"""Interprocedural effect inference over the call graph.

Each project function gets a set of *effects* — the lattice is the
powerset of :data:`EFFECTS` ordered by inclusion, with ``pure`` as the
empty set and join = union.  Leaf facts come from two places:

- **seed tables**: the banned-name tables the per-file rules already
  trusted (``time.time`` reads the clock, ``random.*`` is randomness,
  ``.send()`` is channel I/O, ``dispatch_event``/``on_update`` mutate
  algorithm state, ``*wal*.append`` appends to the WAL).  Seeds apply at
  *call sites by name*, so they fire whether or not the callee resolves;
- **intrinsics**: syntax inside the function body itself (``raise``
  statements, assignments and container mutators rooted at ``self``).

Propagation is a textbook monotone fixed point: one :func:`relax` step
joins every function's effects with its resolved callees' effects, and
:func:`infer_effects` iterates to the (unique, finite) fixpoint.  The
property tests pin monotonicity and idempotence of ``relax`` there.

Two deliberate refinements:

- unresolved (⊤) call sites contribute *no* inferred effects — the seed
  tables are the compensating pessimism (see ``callgraph.py``);
- :data:`MUTATES_SELF` only flows across ``self.``-rooted call sites:
  "mutates its receiver" is receiver-relative, so ``shard_of`` calling
  ``self._bump()`` inherits the taint while calling ``other.bump()``
  does not (that mutates *other*, not the partitioner).

Every inferred effect carries a :class:`Witness` so rule messages can
show the chain (``plan → _delay → _jitter → time.time()``) instead of a
bare verdict.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, CallSite
from repro.analysis.engine import FileContext
from repro.analysis.project import (
    FunctionInfo,
    FunctionNode,
    Project,
    dotted_name,
    receiver_root,
)

# --------------------------------------------------------------------- #
# The effect lattice
# --------------------------------------------------------------------- #

CLOCK = "reads-clock"
RANDOMNESS = "randomness"
IO = "io"
CHANNEL = "channel-send"
STATE = "state-mutation"
WAL = "wal-append"
#: Auxiliary, receiver-relative refinement of state mutation: the
#: function assigns/mutates attributes of its own ``self``.
MUTATES_SELF = "self-mutation"
RAISES = "raises"

EFFECTS: Tuple[str, ...] = (
    CLOCK,
    RANDOMNESS,
    IO,
    CHANNEL,
    STATE,
    WAL,
    MUTATES_SELF,
    RAISES,
)

PURE: FrozenSet[str] = frozenset()

# --------------------------------------------------------------------- #
# Seed facts (the per-file rules' banned-name tables, centralized)
# --------------------------------------------------------------------- #

_QUALIFIED_SEEDS: Dict[str, str] = {
    "time.time": CLOCK,
    "time.time_ns": CLOCK,
    "time.monotonic": CLOCK,
    "time.monotonic_ns": CLOCK,
    "os.urandom": RANDOMNESS,
    "random.SystemRandom": RANDOMNESS,
    # builtin hash() is process-salted: a purity hazard of the same
    # shape as randomness (RPR007/RPR010's rationale).
    "hash": RANDOMNESS,
    "open": IO,
    "io.open": IO,
    "os.system": IO,
    "time.sleep": IO,
    "input": IO,
    "print": IO,
}

_DATETIME_ATTRS = ("now", "utcnow", "today")

#: Leaf names whose *call* performs channel I/O (cf. RPR004).
_CHANNEL_LEAVES = frozenset({"send", "receive", "recv", "receive_nowait"})

#: The routed-protocol mutators: calling one of these advances the
#: algorithm/view state machine (cf. repro.kernel.dispatch).
PROTOCOL_MUTATORS = frozenset(
    {
        "dispatch_event",
        "on_update",
        "on_update_batch",
        "on_answer",
        "on_refresh",
        "apply_update",
        "apply_delta",
        "key_delete",
        "restore_pending_state",
    }
)

#: Container mutators that taint a ``self.``-rooted receiver.
_SELF_MUTATOR_LEAVES = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


def seed_effects(raw: Optional[str]) -> FrozenSet[str]:
    """Effects a call site carries purely by its dotted callee name."""
    if raw is None:
        return PURE
    found: Set[str] = set()
    parts = raw.split(".")
    leaf = parts[-1]
    qualified = _QUALIFIED_SEEDS.get(raw)
    if qualified is not None:
        found.add(qualified)
    if (
        len(parts) >= 2
        and leaf in _DATETIME_ATTRS
        and parts[-2] in ("datetime", "date")
    ):
        found.add(CLOCK)
    if parts[0] == "random" and len(parts) == 2 and leaf != "Random":
        found.add(RANDOMNESS)
    if parts[0] == "subprocess":
        found.add(IO)
    if leaf == "FifoChannel":
        found.add(CHANNEL)
    if len(parts) >= 2 and leaf in _CHANNEL_LEAVES:
        found.add(CHANNEL)
    if leaf in PROTOCOL_MUTATORS:
        found.add(STATE)
    if (
        leaf == "append"
        and len(parts) >= 2
        and any("wal" in part.lower() for part in parts[:-1])
    ):
        found.add(WAL)
    return frozenset(found)


def intrinsic_effects(node: FunctionNode) -> Dict[str, int]:
    """Effect → first line, from the function's own syntax."""
    found: Dict[str, int] = {}

    def note(effect: str, line: int) -> None:
        found.setdefault(effect, line)

    for child in ast.walk(node):
        if isinstance(child, ast.Raise):
            note(RAISES, child.lineno)
        elif isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                child.targets
                if isinstance(child, ast.Assign)
                else [child.target]
            )
            for target in targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and receiver_root(target) == "self":
                    note(MUTATES_SELF, child.lineno)
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and receiver_root(target) == "self":
                    note(MUTATES_SELF, child.lineno)
        elif isinstance(child, ast.Call):
            callee = dotted_name(child.func)
            if (
                callee is not None
                and "." in callee
                and callee.split(".")[-1] in _SELF_MUTATOR_LEAVES
                and receiver_root(child.func) == "self"
                and callee != "self.append"
            ):
                note(MUTATES_SELF, child.lineno)
    return found


# --------------------------------------------------------------------- #
# Fixed-point propagation
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Witness:
    """Why a function carries an effect: one step of the explanation."""

    kind: str  # "seed" | "intrinsic" | "call"
    detail: str  # seeded name / syntax note / callee qualname
    line: int


EffectMap = Dict[str, FrozenSet[str]]
WitnessMap = Dict[Tuple[str, str], Witness]


def base_effects(
    project: Project, graph: CallGraph
) -> Tuple[EffectMap, WitnessMap]:
    """Leaf facts only: intrinsics plus per-call-site seeds."""
    effects: EffectMap = {}
    witnesses: WitnessMap = {}
    for qualname, function in project.functions.items():
        found: Set[str] = set()
        for effect, line in intrinsic_effects(function.node).items():
            found.add(effect)
            witnesses.setdefault(
                (qualname, effect), Witness("intrinsic", "own body", line)
            )
        for site in graph.sites(qualname):
            for effect in seed_effects(site.raw):
                if effect not in found:
                    witnesses.setdefault(
                        (qualname, effect),
                        Witness("seed", site.raw or "<call>", site.line),
                    )
                found.add(effect)
        effects[qualname] = frozenset(found)
    return effects, witnesses


def flow_through(site: CallSite, callee_effects: FrozenSet[str]) -> FrozenSet[str]:
    """Effects that cross one call edge (receiver-relative filtering)."""
    if MUTATES_SELF in callee_effects and not site.self_receiver:
        return callee_effects - {MUTATES_SELF}
    return callee_effects


def relax(graph: CallGraph, effects: EffectMap) -> EffectMap:
    """One monotone step: join every function with its callees."""
    out: EffectMap = {}
    for qualname, current in effects.items():
        joined = set(current)
        for site in graph.sites(qualname):
            if site.target is None:
                continue
            joined |= flow_through(site, effects.get(site.target, PURE))
        out[qualname] = frozenset(joined)
    return out


def infer_effects(
    project: Project, graph: CallGraph
) -> Tuple[EffectMap, WitnessMap]:
    """Iterate :func:`relax` to the least fixed point, with witnesses."""
    effects_mut: Dict[str, Set[str]] = {}
    base, witnesses = base_effects(project, graph)
    for qualname, found in base.items():
        effects_mut[qualname] = set(found)
    changed = True
    while changed:
        changed = False
        for qualname in effects_mut:
            current = effects_mut[qualname]
            for site in graph.sites(qualname):
                if site.target is None:
                    continue
                incoming = flow_through(
                    site,
                    frozenset(effects_mut.get(site.target, PURE)),
                )
                for effect in incoming - current:
                    witnesses.setdefault(
                        (qualname, effect),
                        Witness("call", site.target, site.line),
                    )
                    current.add(effect)
                    changed = True
    return (
        {qualname: frozenset(found) for qualname, found in effects_mut.items()},
        witnesses,
    )


# --------------------------------------------------------------------- #
# The bundle rules consume
# --------------------------------------------------------------------- #


class ProjectAnalysis:
    """Symbol table + call graph + inferred effects for one invocation."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts: List[FileContext] = list(contexts)
        self.project = Project.build(self.contexts)
        self.graph = CallGraph.build(self.project)
        self.effects, self.witnesses = infer_effects(self.project, self.graph)

    def effects_of(self, qualname: Optional[str]) -> FrozenSet[str]:
        if qualname is None:
            return PURE
        return self.effects.get(qualname, PURE)

    def call_effects(self, site: CallSite) -> FrozenSet[str]:
        """Seeded-by-name plus inferred-from-target effects of one call."""
        inferred = (
            flow_through(site, self.effects_of(site.target))
            if site.target is not None
            else PURE
        )
        return seed_effects(site.raw) | inferred

    def functions_in(self, context: FileContext) -> Iterator[FunctionInfo]:
        for function in self.project.functions.values():
            if function.path == context.path:
                yield function

    def sites_of(self, function: FunctionInfo) -> List[CallSite]:
        return self.graph.sites(function.qualname)

    def describe(self, qualname: str, effect: str) -> str:
        """The witness chain, e.g. ``_delay → _jitter → time.time (line 6)``."""
        steps: List[str] = []
        current = qualname
        for _ in range(len(self.effects) + 1):
            witness = self.witnesses.get((current, effect))
            if witness is None:
                break
            if witness.kind == "call":
                short = _short(witness.detail)
                steps.append(short)
                current = witness.detail
                continue
            if witness.kind == "seed":
                steps.append(f"{witness.detail} (line {witness.line})")
            else:
                steps.append(f"{witness.detail} (line {witness.line})")
            break
        return " -> ".join(steps) if steps else effect

    def file_dependencies(self) -> Dict[str, Set[str]]:
        return self.graph.file_dependencies(self.project)


def _short(qualname: str) -> str:
    """Trailing ``Class.method`` / ``function`` segment for messages."""
    parts = qualname.split(".")
    if len(parts) >= 2 and parts[-2][:1].isupper():
        return ".".join(parts[-2:])
    return parts[-1]
