"""Views over multiple autonomous sources — Section 7's open problem.

The paper closes by deferring multi-source views: "warehouse queries
(both regular queries and compensating queries) must be fragmented for
execution at multiple sources ... coordinating the query results and the
necessary compensations for anomaly-causing updates may require some
intricate algorithms."  (The authors' own follow-up work — Strobe,
SWEEP — confirmed this.)

This subpackage makes the difficulty *observable* — and then solves it
the way the authors eventually did
(:class:`~repro.multisource.strobe.StrobeStyle`, after the Strobe
algorithms of their 1996 follow-up):

- :mod:`repro.multisource.fragment` — fragments a term query by relation
  ownership and reassembles fragment answers at the warehouse;
- :mod:`repro.multisource.driver` — a simulation with one FIFO channel
  pair per source (per-source ordering only — there is no global order
  across sources, which is exactly what breaks ECA's deduction);
- :mod:`repro.multisource.algorithms` —
  :class:`FragmentingIncremental`, the single-source incremental
  algorithm transplanted with fragmentation (demonstrably anomalous even
  on interleavings where single-source ECA is safe), and
  :class:`MultiSourceStoredCopies`, the SC strategy, which remains
  complete because it never queries the sources at all;
- :mod:`repro.multisource.strobe` — :class:`StrobeStyle`, a *correct*
  query-based algorithm for key-complete views (action list, delete
  filters, quiescent apply);
- :mod:`repro.multisource.sweep` — :class:`SweepStyle`, a correct
  query-based algorithm with **no key requirement** (sequential
  per-relation sweeps, locally computed interference corrections);
- :mod:`repro.multisource.consistency` — *cut consistency*, the
  attainable multi-source analogue of Section 3.1's hierarchy.

The integration tests quantify the failure: fragments of one query are
evaluated against *different* global states, an effect no per-source
compensation can see.
"""

from repro.multisource.algorithms import FragmentingIncremental, MultiSourceStoredCopies
from repro.multisource.consistency import (
    check_cut_consistency,
    check_cut_convergence,
    cut_report,
)
from repro.multisource.driver import MultiSourceSimulation
from repro.multisource.fragment import FragmentPlan, fragment_query
from repro.multisource.strobe import StrobeStyle
from repro.multisource.sweep import SweepStyle

__all__ = [
    "FragmentPlan",
    "FragmentingIncremental",
    "MultiSourceSimulation",
    "MultiSourceStoredCopies",
    "StrobeStyle",
    "SweepStyle",
    "check_cut_consistency",
    "check_cut_convergence",
    "cut_report",
    "fragment_query",
]
