"""Cut consistency — the right correctness notion across sources.

With several autonomous sources there is no single global state sequence:
each source serializes its own updates, and the warehouse observes some
interleaving.  The natural analogue of Section 3.1's consistency is
*cut consistency*: every warehouse state equals the view evaluated on a
**consistent cut** — one prefix of each source's history — and successive
warehouse states correspond to monotonically advancing cuts.

This is exactly the guarantee stored copies retain across sources (each
notification advances one coordinate of the cut), while naive fragmenting
maintenance satisfies nothing at all.  Single-source consistency is the
special case with one coordinate.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.relational.bag import SignedBag
from repro.relational.engine import evaluate_view
from repro.relational.views import View

Cut = Tuple[int, ...]
State = Dict[str, SignedBag]


def _as_bag(value: object) -> SignedBag:
    """Accept a live :class:`SignedBag` or its canonical pair form.

    States that round-tripped through ``repro.durability`` (or any JSON
    layer) arrive as ``[(row, count), ...]`` pairs; rebuild them through
    the same validated :meth:`SignedBag.from_pairs` path the codec uses.
    """
    if isinstance(value, SignedBag):
        return value
    return SignedBag.from_pairs([(tuple(row), count) for row, count in value])


def _merge(per_source: Mapping[str, List[State]], names: Sequence[str], cut: Cut) -> State:
    combined: State = {}
    for name, index in zip(names, cut):
        for relation, bag in per_source[name][index].items():
            combined[relation] = _as_bag(bag)
    return combined


def _dominates(a: Cut, b: Cut) -> bool:
    return all(x >= y for x, y in zip(a, b))


def check_cut_consistency(
    view: View,
    per_source_states: Mapping[str, List[State]],
    view_states: Sequence[SignedBag],
) -> bool:
    """True iff ``view_states`` follows a monotone path of consistent cuts.

    Exhaustive over the (small) cut lattice: maintains the antichain of
    minimal cuts reachable after matching each view state, so no greedy
    mis-commitment can cause a false negative.
    """
    names = sorted(per_source_states)
    limits = [len(per_source_states[name]) for name in names]
    all_cuts = list(itertools.product(*[range(limit) for limit in limits]))

    # Precompute the view value at every cut (lattices here are tiny:
    # (k_A+1) * (k_B+1) * ...).
    # evaluate_view dispatches through ``evaluate_oracle`` when present,
    # so ``view`` may also be a WarehouseCatalog (or a merged sharded
    # catalog's stand-in) posing as one big tagged view.
    value_at: Dict[Cut, SignedBag] = {
        cut: evaluate_view(view, _merge(per_source_states, names, cut))
        for cut in all_cuts
    }

    frontier: List[Cut] = [tuple(0 for _ in names)]
    for observed in view_states:
        matches = [
            cut
            for cut in all_cuts
            if value_at[cut] == observed
            and any(_dominates(cut, previous) for previous in frontier)
        ]
        if not matches:
            return False
        # Keep only minimal matches (the antichain) as the new frontier.
        frontier = [
            cut
            for cut in matches
            if not any(other != cut and _dominates(cut, other) for other in matches)
        ]
    return True


def cut_report(
    view: View,
    per_source_states: Mapping[str, List[State]],
    view_states: Sequence[SignedBag],
    final_view: SignedBag,
) -> "ConsistencyReport":
    """Classify a multi-source execution as a :class:`ConsistencyReport`.

    The single-source checker's levels carry over with cuts standing in
    for source-state prefixes: *consistent* (and *weakly consistent* —
    the two coincide here, since a monotone cut path orders every pair of
    observed states) means every view state sits on a monotone path of
    consistent cuts; *convergent* means the final view matches the final
    cut.  *Complete* is never claimed: with several autonomous sources
    there is no canonical global state sequence to be complete against.
    """
    from repro.consistency.checker import ConsistencyReport

    consistent = check_cut_consistency(view, per_source_states, view_states)
    convergent = check_cut_convergence(view, per_source_states, final_view)
    return ConsistencyReport(
        convergent=convergent,
        weakly_consistent=consistent,
        consistent=consistent,
        complete=False,
        detail="cut-consistency over "
        f"{len(per_source_states)} source histories",
    )


def check_cut_convergence(
    view: View,
    per_source_states: Mapping[str, List[State]],
    final_view: SignedBag,
) -> bool:
    """The final view matches the view over every source's final state."""
    names = sorted(per_source_states)
    final_cut = tuple(len(per_source_states[name]) - 1 for name in names)
    return (
        evaluate_view(view, _merge(per_source_states, names, final_cut)) == final_view
    )
