"""A Strobe-style correct multi-source algorithm.

The paper defers multi-source views to future work; the authors' own
follow-up (Zhuge et al., "The Strobe Algorithms for Multi-Source
Warehouse Consistency", 1996) solved it for key-complete views.  This
module implements the same idea on our substrate, so the repository
contains not just the *demonstration* of the open problem
(:class:`~repro.multisource.algorithms.FragmentingIncremental`) but a
working answer to it:

- the view must project a key of every base relation (as in ECA-Key) and
  is maintained with **set semantics** — provenance by key is what makes
  cross-source races resolvable;
- the warehouse accumulates an **action list** (AL) instead of touching
  the view directly;
- a **delete** appends ``key-delete`` to the AL immediately and is also
  registered as a filter against every query currently in flight (the
  same correction our single-source ECA-Key needed — a pending insert
  query carries the deleted key as a bound constant and its late answer
  must not resurrect the tuple);
- an **insert** fans out fragment queries to the owning sources; when the
  last fragment answer arrives, the reassembled tuples (minus filtered
  keys) are appended to the AL as inserts;
- when **no queries are pending**, the AL is applied to the materialized
  view atomically (deletes by key, inserts with duplicate suppression)
  — the quiescent-apply that keeps intermediate states invisible.

Why this dodges the naive transplant's failure: double derivations caused
by a fragment reading another source *after* a concurrent insert collapse
under set semantics (the concurrent insert's own query derives the same
tuple, and duplicates are suppressed), missing derivations are covered by
the concurrent update's own query, and delete races are covered by the
filter + ordered AL.  We validate the claim empirically: over randomized
workloads and interleavings the algorithm is always cut-consistent and
convergent (``tests/integration/test_strobe.py``), while the naive
transplant fails on roughly half of them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.protocol import Routed, WarehouseAlgorithm
from repro.errors import ProtocolError, SchemaError
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.multisource.fragment import FragmentPlan, fragment_query
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.relational.views import View
from repro.warehouse.state import key_delete

_DELETE = "delete"
_INSERT = "insert"


class _PendingInsert:
    """One insert's fragment plans awaiting answers, plus delete filters."""

    def __init__(self) -> None:
        self.plans: List[Tuple[FragmentPlan, Dict[str, SignedBag]]] = []
        self.outstanding = 0
        #: (key output positions, key values) registered while in flight.
        self.filters: List[Tuple[Tuple[int, ...], Tuple[object, ...]]] = []


class StrobeStyle(WarehouseAlgorithm):
    """Correct multi-source maintenance for key-complete views."""

    name = "strobe"
    multi_source = True

    def __init__(
        self,
        view: View,
        owners: Optional[Dict[str, str]] = None,
        initial: Optional[SignedBag] = None,
    ) -> None:
        if not view.contains_all_keys():
            raise SchemaError(
                f"the Strobe-style algorithm requires view {view.name!r} to "
                f"project a key of every base relation"
            )
        super().__init__(view, initial)
        if owners:
            self.owners = dict(owners)
        #: query id -> (pending insert record, its plan index)
        self._route: Dict[int, Tuple[_PendingInsert, int, str]] = {}
        self._pending: List[_PendingInsert] = []
        #: The action list: ("delete", relation, values) | ("insert", bag).
        self._actions: List[Tuple] = []

    # ------------------------------------------------------------------ #
    # Routed events (called by the execution kernels)
    # ------------------------------------------------------------------ #

    def on_update(self, source: Optional[str], notification: UpdateNotification) -> Routed:
        update = notification.update
        if not self.view.involves(update.relation):
            return []
        if update.is_delete:
            self._actions.append((_DELETE, update.relation, update.values))
            schema = self.view.schema_for(update.relation)
            positions = self.view.key_output_positions(update.relation)
            key = schema.key_of(update.values)
            for pending in self._pending:
                pending.filters.append((positions, key))
            self._maybe_apply()
            return []
        # Insert: fan fragments out to the owning sources.
        query = self.view.substitute(update.relation, update.signed_tuple())
        record = _PendingInsert()
        routed: Routed = []
        for plan in fragment_query(query, self.owners):
            answers: Dict[str, SignedBag] = {}
            plan_index = len(record.plans)
            record.plans.append((plan, answers))
            if plan.is_local():
                continue  # fully bound; reassembles with no answers
            for destination, fragment in plan.fragments.items():
                query_id = self._next_query_id
                self._next_query_id += 1
                self._route[query_id] = (record, plan_index, destination)
                record.outstanding += 1
                routed.append(
                    (destination, QueryRequest(query_id, Query([fragment])))
                )
        if record.outstanding:
            self._pending.append(record)
        else:
            self._finish_insert(record)
            self._maybe_apply()
        return routed

    def on_answer(self, source: Optional[str], answer: QueryAnswer) -> Routed:
        # Validate before mutating (RPR012): the route entry is popped
        # only once the answer is known to be legal, so a protocol error
        # leaves the strobe's bookkeeping untouched.
        try:
            record, plan_index, destination = self._route[answer.query_id]
        except KeyError:
            raise ProtocolError(
                f"answer for unknown fragment {answer.query_id}"
            ) from None
        if destination != source:
            raise ProtocolError(
                f"fragment {answer.query_id} answered by {source}, "
                f"sent to {destination}"
            )
        del self._route[answer.query_id]
        plan, answers = record.plans[plan_index]
        answers[source] = answer.answer
        record.outstanding -= 1
        if record.outstanding == 0:
            self._pending.remove(record)
            self._finish_insert(record)
        self._maybe_apply()
        return []

    # ------------------------------------------------------------------ #
    # Action list
    # ------------------------------------------------------------------ #

    def _finish_insert(self, record: _PendingInsert) -> None:
        derived = SignedBag()
        for plan, answers in record.plans:
            derived.add_bag(plan.reassemble(answers))
        survivors = SignedBag()
        for row, count in derived.items():
            if count <= 0:
                # Insert queries over positive data cannot produce signed
                # tuples; surface a mis-wired source loudly.
                raise ProtocolError(f"negative derivation {row!r} for an insert")
            if any(
                tuple(row[i] for i in positions) == key
                for positions, key in record.filters
            ):
                continue  # deleted while the query was in flight
            survivors.add(row, 1)  # set semantics
        if not survivors.is_empty():
            self._actions.append((_INSERT, survivors))

    def _maybe_apply(self) -> None:
        if self._pending or not self._actions:
            return
        working = self.mv.as_bag()
        for action in self._actions:
            if action[0] == _DELETE:
                key_delete(working, self.view, action[1], action[2])
            else:
                for row in action[1].rows():
                    if working.multiplicity(row) == 0:
                        working.add(row, 1)
        self._actions = []
        self.mv.replace(working)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    def is_quiescent(self) -> bool:
        return not self._pending and not self._actions

    def gauges(self) -> Dict[str, int]:
        """Strobe's in-flight state: open queries, pending inserts, AL size."""
        return {
            "uqs": len(self.pending_query_ids()),
            "pending_inserts": len(self._pending),
            "action_list": len(self._actions),
        }

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def durable_config(self) -> Dict[str, Any]:
        return {"owners": dict(self.owners)}

    def pending_state(self) -> Dict[str, Any]:
        # A FragmentPlan is fully derived from (term, owners), so only the
        # term persists; routes refer to pending records by list index.
        pending = [
            {
                "plans": [(plan.term, dict(answers)) for plan, answers in record.plans],
                "outstanding": record.outstanding,
                "filters": list(record.filters),
            }
            for record in self._pending
        ]
        route = {
            query_id: (self._pending.index(record), plan_index, destination)
            for query_id, (record, plan_index, destination) in self._route.items()
        }
        return {
            "next_query_id": self._next_query_id,
            "actions": list(self._actions),
            "pending": pending,
            "route": route,
        }

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        self._next_query_id = state["next_query_id"]
        self._actions = [tuple(action) for action in state["actions"]]
        self._pending = []
        for entry in state["pending"]:
            record = _PendingInsert()
            record.plans = [
                (FragmentPlan(term, self.owners), dict(answers))
                for term, answers in entry["plans"]
            ]
            record.outstanding = entry["outstanding"]
            record.filters = [
                (tuple(positions), tuple(key)) for positions, key in entry["filters"]
            ]
            self._pending.append(record)
        self._route = {
            query_id: (self._pending[record_index], plan_index, destination)
            for query_id, (record_index, plan_index, destination) in state[
                "route"
            ].items()
        }

    def pending_requests(self) -> Routed:
        out: Routed = []
        for query_id in sorted(self._route):
            record, plan_index, destination = self._route[query_id]
            plan = record.plans[plan_index][0]
            out.append(
                (destination, QueryRequest(query_id, Query([plan.fragments[destination]])))
            )
        return out

    def pending_query_ids(self) -> List[int]:
        return sorted(self._route)
