"""A SWEEP-style correct multi-source algorithm — no keys required.

The second published answer to the paper's multi-source problem (after
Strobe) was SWEEP (Agrawal, El Abbadi, Singh, Yurek: "Efficient View
Maintenance at Data Warehouses", 1997): evaluate each update's
incremental query by *sweeping* one base relation at a time, and cancel
concurrent-update interference with corrections the warehouse can compute
**locally**, because by the time a hop's answer arrives the warehouse has
already received (per-source FIFO!) the notification of every update that
hop could have seen — and the interference of such an update on the hop
is just ``current-bindings |x| tuple(U')``, a fully bound expression.

Shape of the algorithm here:

- updates are processed **serially** (like LCA): while ``U``'s sweep runs,
  later notifications queue;
- ``V<U>`` binds ``U``'s relation; the sweep then visits each remaining
  free relation in term order.  Each *hop* ships one query to the owning
  source: the current partial bindings (as bound constants) joined with
  that one relation, projecting all covered columns;
- when a hop's answer arrives, the warehouse subtracts, for every
  *received-but-unprocessed* update ``U'`` on the hop's relation, the
  locally evaluated ``bindings |x| tuple(U')`` — per-source FIFO makes
  this correction set exact (``U'`` interfered iff its notification beat
  the answer);
- after the last hop, the final bindings (filtered by the full view
  condition, projected) are the delta: ``MV += delta``, and the next
  queued update starts.

Compared with :class:`~repro.multisource.strobe.StrobeStyle`:

===========  =======================  ==============================
             Strobe-style             SWEEP-style
===========  =======================  ==============================
requires     keys of every relation   nothing (duplicates fine)
queries      parallel fragments       sequential hops (semi-join)
concurrency  pipelined                one update at a time
correction   key-delete filters       algebraic, fully bound
===========  =======================  ==============================

Self-joins are not supported (each base relation may appear once) — the
sweep's per-relation corrections assume a single occurrence.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.protocol import Routed, WarehouseAlgorithm
from repro.errors import ProtocolError, SchemaError
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.relational.bag import SignedBag
from repro.relational.conditions import conjunction, flatten_conjuncts
from repro.relational.expressions import BoundOperand, Query, RelationOperand, Term
from repro.relational.schema import ProductSchema
from repro.relational.tuples import SignedTuple
from repro.relational.views import View
from repro.source.updates import Update

Row = Tuple[object, ...]


class _Sweep:
    """State of one update's sweep."""

    def __init__(self, term: Term, free_indices: List[int]) -> None:
        #: The substituted view term V<U> (updated relation bound).
        self.term = term
        #: Operand indices not yet visited, in term order.
        self.remaining = list(free_indices)
        #: Operand indices whose values the bindings currently carry.
        self.covered = [
            i for i, op in enumerate(term.operands) if op.is_bound
        ]
        #: Partial rows over the covered operands (signed multiplicities).
        sign = term.coefficient
        values: List[object] = []
        for index in self.covered:
            operand = term.operands[index]
            sign *= operand.tuple.sign
            values.extend(operand.tuple.values)
        self.bindings = SignedBag({tuple(values): sign})
        #: The hop currently in flight: (query id, operand index).
        self.in_flight: Optional[Tuple[int, int]] = None


class SweepStyle(WarehouseAlgorithm):
    """Correct multi-source maintenance with no key requirement."""

    name = "sweep"
    multi_source = True

    def __init__(
        self,
        view: View,
        owners: Optional[Dict[str, str]] = None,
        initial: Optional[SignedBag] = None,
    ) -> None:
        names = [schema.base for schema in view.relations]
        if len(set(names)) != len(names):
            raise SchemaError(
                f"the SWEEP-style algorithm does not support self-joins "
                f"(view {view.name!r} mentions a relation twice)"
            )
        super().__init__(view, initial)
        if owners:
            self.owners = dict(owners)
        self._queue: Deque[Update] = deque()
        self._current: Optional[_Sweep] = None

    # ------------------------------------------------------------------ #
    # Routed events (called by the execution kernels)
    # ------------------------------------------------------------------ #

    def on_update(self, source: Optional[str], notification: UpdateNotification) -> Routed:
        update = notification.update
        if not self.view.involves(update.relation):
            return []
        self._queue.append(update)
        if self._current is None:
            return self._start_next()
        return []

    def on_answer(self, source: Optional[str], answer: QueryAnswer) -> Routed:
        sweep = self._current
        if sweep is None or sweep.in_flight is None:
            raise ProtocolError(f"unexpected answer {answer.query_id}")
        query_id, operand_index = sweep.in_flight
        if answer.query_id != query_id:
            raise ProtocolError(
                f"answer {answer.query_id} does not match hop {query_id}"
            )
        sweep.in_flight = None
        corrected = answer.answer + self._hop_corrections(sweep, operand_index)
        sweep.bindings = corrected
        sweep.covered = sorted(sweep.covered + [operand_index])
        return self._advance()

    # ------------------------------------------------------------------ #
    # Sweep machinery
    # ------------------------------------------------------------------ #

    def _start_next(self) -> Routed:
        routed: Routed = []
        while self._queue and self._current is None:
            update = self._queue.popleft()
            query = self.view.substitute(update.relation, update.signed_tuple())
            # Single-occurrence SPJ views produce exactly one term.
            term = query.terms[0]
            free = [
                i for i, operand in enumerate(term.operands) if not operand.is_bound
            ]
            self._current = _Sweep(term, free)
            routed.extend(self._advance())
        return routed

    def _advance(self) -> Routed:
        sweep = self._current
        assert sweep is not None
        if not sweep.remaining:
            self._finish(sweep)
            self._current = None
            return self._start_next()
        operand_index = sweep.remaining.pop(0)
        hop_query, destination = self._build_hop(sweep, operand_index)
        if hop_query.is_empty():
            # No bindings survive: the delta is empty from here on out.
            sweep.bindings = SignedBag()
            sweep.covered = sorted(sweep.covered + [operand_index])
            return self._advance()
        query_id = self._next_query_id
        self._next_query_id += 1
        sweep.in_flight = (query_id, operand_index)
        return [(destination, QueryRequest(query_id, hop_query))]

    def _hop_operands_and_condition(self, sweep: _Sweep, operand_index: int):
        """Shared layout for hop queries and their local corrections."""
        term = sweep.term
        included = sorted(sweep.covered + [operand_index])
        schemas = [term.operands[i].schema for i in included]
        sub_product = ProductSchema(schemas)
        decidable = []
        for conjunct in flatten_conjuncts(term.condition):
            try:
                for name in conjunct.attributes():
                    sub_product.resolve(name)
            except SchemaError:
                continue
            decidable.append(conjunct)
        projection = [
            f"{schema.name}.{attribute}"
            for schema in schemas
            for attribute in schema.attributes
        ]
        return included, conjunction(decidable), projection

    def _build_hop(self, sweep: _Sweep, operand_index: int) -> Tuple[Query, str]:
        term = sweep.term
        relation = term.operands[operand_index].schema
        destination = self.owners[relation.base]
        included, condition, projection = self._hop_operands_and_condition(
            sweep, operand_index
        )
        terms: List[Term] = []
        for row, count in sweep.bindings.items():
            sign = 1 if count > 0 else -1
            operands = []
            offset = 0
            for index in included:
                schema = term.operands[index].schema
                if index == operand_index:
                    operands.append(RelationOperand(schema))
                else:
                    values = row[offset : offset + schema.arity]
                    operands.append(BoundOperand(schema, SignedTuple(values)))
                    offset += schema.arity
            hop_term = Term(operands, projection, condition, sign)
            terms.extend([hop_term] * abs(count))
        return Query(terms), destination

    def _hop_corrections(self, sweep: _Sweep, operand_index: int) -> SignedBag:
        """Subtract interference from received-but-unprocessed updates.

        Per-source FIFO: any update on the hop's relation whose
        notification has been received (it is sitting in our queue) was
        executed before the hop's answer was evaluated, so the hop saw it
        and its contribution — ``bindings |x| tuple(U')`` — must come out.
        Updates not yet received cannot have been seen.  The correction is
        fully bound and evaluated at the warehouse.
        """
        term = sweep.term
        relation = term.operands[operand_index].schema
        interfering = [u for u in self._queue if u.relation == relation.base]
        if not interfering:
            return SignedBag()
        included, condition, projection = self._hop_operands_and_condition(
            sweep, operand_index
        )
        correction = SignedBag()
        for update in interfering:
            signed = update.signed_tuple()
            for row, count in sweep.bindings.items():
                sign = -1 if count > 0 else 1  # negated binding sign
                operands = []
                offset = 0
                for index in included:
                    schema = term.operands[index].schema
                    if index == operand_index:
                        operands.append(
                            BoundOperand(schema, SignedTuple(signed.values))
                        )
                    else:
                        values = row[offset : offset + schema.arity]
                        operands.append(BoundOperand(schema, SignedTuple(values)))
                        offset += schema.arity
                bound_term = Term(operands, projection, condition, sign)
                result = bound_term.evaluate({})
                for _ in range(abs(count)):
                    # The update's own sign scales the interference.
                    correction.add_bag(
                        result if signed.sign > 0 else -result
                    )
        return correction

    def _finish(self, sweep: _Sweep) -> None:
        """Apply the final projection/condition and install the delta."""
        term = sweep.term
        positions: List[int] = []
        offset = 0
        layout: Dict[int, int] = {}
        for index in sorted(sweep.covered):
            layout[index] = offset
            offset += term.operands[index].schema.arity
        # Map term projection (product positions) into binding-row slots.
        for name in term.projection:
            product_position = term.product.resolve(name)
            running = 0
            for index, operand in enumerate(term.operands):
                arity = operand.schema.arity
                if product_position < running + arity:
                    positions.append(layout[index] + (product_position - running))
                    break
                running += arity
        predicate_product = ProductSchema(
            [term.operands[i].schema for i in sorted(sweep.covered)]
        )
        predicate = term.condition.bind(predicate_product)
        delta = SignedBag()
        for row, count in sweep.bindings.items():
            if not predicate(row):
                continue
            delta.add(tuple(row[i] for i in positions), count)
        self.mv.apply_delta(delta)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    def is_quiescent(self) -> bool:
        return self._current is None and not self._queue

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def durable_config(self) -> Dict[str, Any]:
        return {"owners": dict(self.owners)}

    def pending_state(self) -> Dict[str, Any]:
        current = None
        if self._current is not None:
            sweep = self._current
            current = {
                "term": sweep.term,
                "remaining": list(sweep.remaining),
                "covered": list(sweep.covered),
                "bindings": sweep.bindings.to_pairs(),
                "in_flight": sweep.in_flight,
            }
        return {
            "next_query_id": self._next_query_id,
            "queue": list(self._queue),
            "current": current,
        }

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        self._next_query_id = state["next_query_id"]
        self._queue = deque(state["queue"])
        entry = state["current"]
        if entry is None:
            self._current = None
            return
        sweep = _Sweep.__new__(_Sweep)
        sweep.term = entry["term"]
        sweep.remaining = list(entry["remaining"])
        sweep.covered = list(entry["covered"])
        sweep.bindings = SignedBag.from_pairs(entry["bindings"])
        in_flight = entry["in_flight"]
        sweep.in_flight = tuple(in_flight) if in_flight is not None else None
        self._current = sweep

    def pending_requests(self) -> Routed:
        sweep = self._current
        if sweep is None or sweep.in_flight is None:
            return []
        query_id, operand_index = sweep.in_flight
        # _build_hop does not mutate the sweep, so rebuilding the exact
        # in-flight request is safe.
        hop_query, destination = self._build_hop(sweep, operand_index)
        return [(destination, QueryRequest(query_id, hop_query))]

    def pending_query_ids(self) -> List[int]:
        sweep = self._current
        if sweep is None or sweep.in_flight is None:
            return []
        return [sweep.in_flight[0]]

    def gauges(self) -> Dict[str, int]:
        """Sweep's in-flight state: the open hop plus queued updates."""
        return {
            "uqs": len(self.pending_query_ids()),
            "queued_updates": len(self._queue) + (1 if self._current else 0),
        }
