"""Query fragmentation by relation ownership.

A term ``pi_proj(sigma_cond(~r1 x ... x ~rn))`` whose free relations live
at several sources cannot be shipped anywhere whole.  The straightforward
fragmentation (the paper: "fragmenting itself does not pose a novel
problem, at least in the straightforward relational case"):

- for each source owning at least one free relation, build a *fragment
  term* over that source's free relations plus every bound tuple (bound
  tuples travel as constants and carry the join constraints), projecting
  all columns of the source's free relations;
- at the warehouse, cross the fragment answers, rebuild full product rows
  (bound operand values inlined), and apply the original condition,
  projection, coefficient, and bound-tuple signs.

The fragments are *filters*, not the final semantics: each fragment
applies only the conjuncts decidable within it, and the warehouse
re-applies the full condition on reassembled rows (idempotent for the
conjuncts a fragment already enforced).

What fragmentation cannot give you is *atomicity*: the fragments of one
query are evaluated at different sources at different times, so their
answers may reflect different global states.  That is the multi-source
anomaly the paper defers, and the reason the naive algorithm in
:mod:`repro.multisource.algorithms` is incorrect.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.bag import SignedBag
from repro.relational.conditions import conjunction, flatten_conjuncts
from repro.relational.expressions import BoundOperand, Query, RelationOperand, Term
from repro.relational.schema import ProductSchema
from repro.relational.tuples import SignedTuple

Row = Tuple[object, ...]


class FragmentPlan:
    """The decomposition of one term across sources, plus reassembly."""

    def __init__(self, term: Term, owners: Mapping[str, str]) -> None:
        self.term = term
        #: source name -> fragment term to ship there.
        self.fragments: Dict[str, Term] = {}
        #: source name -> free operand indices covered by that fragment.
        self._free_of: Dict[str, List[int]] = {}
        for index, operand in enumerate(term.operands):
            if operand.is_bound:
                continue
            try:
                owner = owners[operand.source_relation]
            except KeyError:
                raise SchemaError(
                    f"relation {operand.source_relation!r} has no owning source"
                ) from None
            self._free_of.setdefault(owner, []).append(index)
        for source, indices in self._free_of.items():
            self.fragments[source] = self._build_fragment(indices)

    # ------------------------------------------------------------------ #
    # Fragment construction
    # ------------------------------------------------------------------ #

    def _build_fragment(self, free_indices: Sequence[int]) -> Term:
        operands = []
        for index, operand in enumerate(self.term.operands):
            if index in free_indices:
                operands.append(RelationOperand(operand.schema))
            elif operand.is_bound:
                # Constants travel with every fragment, sign stripped —
                # signs and the coefficient are applied exactly once, at
                # reassembly.
                operands.append(
                    BoundOperand(operand.schema, SignedTuple(operand.tuple.values))
                )
        sub_product = ProductSchema([op.schema for op in operands])
        projection = [
            f"{self.term.operands[i].schema.name}.{attribute}"
            for i in free_indices
            for attribute in self.term.operands[i].schema.attributes
        ]
        decidable = []
        for conjunct in flatten_conjuncts(self.term.condition):
            try:
                for name in conjunct.attributes():
                    sub_product.resolve(name)
            except SchemaError:
                continue
            decidable.append(conjunct)
        return Term(operands, projection, conjunction(decidable))

    # ------------------------------------------------------------------ #
    # Reassembly
    # ------------------------------------------------------------------ #

    def reassemble(self, answers: Mapping[str, SignedBag]) -> SignedBag:
        """Combine fragment answers into the term's value.

        ``answers`` maps each fragment's source to the bag it returned
        (rows are the fragment's projected columns, in fragment order).
        """
        missing = set(self.fragments) - set(answers)
        if missing:
            raise SchemaError(f"missing fragment answers from {sorted(missing)}")
        sources = sorted(self.fragments)
        extents = [list(answers[source].items()) for source in sources]

        sign = self.term.coefficient
        for operand in self.term.operands:
            if operand.is_bound:
                sign *= operand.tuple.sign

        predicate = self.term.condition.bind(self.term.product)
        positions = tuple(
            self.term.product.resolve(name) for name in self.term.projection
        )
        # Per source, the offset of each covered operand's columns within
        # that source's fragment rows.
        layout: Dict[str, Dict[int, int]] = {}
        for source in sources:
            offset = 0
            layout[source] = {}
            for index in self._free_of[source]:
                layout[source][index] = offset
                offset += self.term.operands[index].schema.arity

        result = SignedBag()
        for combo in itertools.product(*extents):
            pieces: List[Row] = []
            count = sign
            by_source = dict(zip(sources, combo))
            for index, operand in enumerate(self.term.operands):
                if operand.is_bound:
                    pieces.append(operand.tuple.values)
                    continue
                owner = next(s for s in sources if index in self._free_of[s])
                row, _ = by_source[owner]
                start = layout[owner][index]
                pieces.append(row[start : start + operand.schema.arity])
            for _, multiplicity in combo:
                count *= multiplicity
            full_row: Row = tuple(itertools.chain.from_iterable(pieces))
            if not predicate(full_row):
                continue
            result.add(tuple(full_row[i] for i in positions), count)
        return result

    def is_local(self) -> bool:
        """True when the term is fully bound (no fragments at all)."""
        return not self.fragments

    def spans_sources(self) -> bool:
        return len(self.fragments) > 1


def fragment_query(query: Query, owners: Mapping[str, str]) -> List[FragmentPlan]:
    """One :class:`FragmentPlan` per term of ``query``."""
    return [FragmentPlan(term, owners) for term in query.terms]
