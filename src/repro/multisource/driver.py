"""Simulation driver for multiple autonomous sources.

Each source gets its own FIFO channel pair, so ordering guarantees hold
*per source* only — there is no global order between one source's update
notifications and another source's query answers.  That missing order is
precisely what ECA's compensation deduction relies on, and its absence is
what the multi-source tests demonstrate.

Actions (for schedules):

- ``"update"``          — execute the next workload update at its owning
  source and send the notification;
- ``"answer:<name>"``   — source ``<name>`` evaluates its oldest pending
  fragment query and sends the answer;
- ``"warehouse:<name>"`` — the warehouse processes the oldest message from
  source ``<name>``'s channel.

:class:`repro.simulation.schedules.RandomSchedule` works unchanged (it
chooses among whatever actions are available).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Sequence

from repro.errors import SimulationError
from repro.messaging.channel import FifoChannel
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.relational.bag import SignedBag
from repro.simulation.trace import S_QU, S_UP, Trace, W_ANS, W_UP
from repro.source.base import Source
from repro.source.updates import Update


class MultiSourceSimulation:
    """One warehouse, several sources, per-source FIFO ordering.

    Parameters
    ----------
    sources:
        name -> source database.  Relation names must be globally unique.
    algorithm:
        An object with ``on_update(source_name, notification)`` and
        ``on_answer(source_name, answer)``, both returning a list of
        ``(destination_source, QueryRequest)`` pairs, plus ``view_state()``
        and ``is_quiescent()``.
    workload:
        Updates, in global order; each is routed to the source owning its
        relation.
    """

    def __init__(
        self,
        sources: Mapping[str, Source],
        algorithm: object,
        workload: Sequence[Update],
    ) -> None:
        self.sources = dict(sources)
        self.algorithm = algorithm
        self._updates: Deque[Update] = deque(workload)
        self.owners: Dict[str, str] = {}
        for name, source in self.sources.items():
            for schema in source.schemas:
                if schema.name in self.owners:
                    raise SimulationError(
                        f"relation {schema.name!r} owned by two sources"
                    )
                self.owners[schema.name] = name
        self.to_warehouse: Dict[str, FifoChannel] = {
            name: FifoChannel(f"{name}->warehouse") for name in self.sources
        }
        self.to_source: Dict[str, FifoChannel] = {
            name: FifoChannel(f"warehouse->{name}") for name in self.sources
        }
        self.trace = Trace()
        self._serial = 0
        #: Per-source state histories: name -> [state after i updates at
        #: that source].  Used by the cut-consistency checker.
        self.per_source_states: Dict[str, List[Dict[str, SignedBag]]] = {
            name: [source.snapshot()] for name, source in self.sources.items()
        }
        self.trace.record_source_state(self._snapshot())
        self.trace.record_view_state(algorithm.view_state())

    def _snapshot(self) -> Dict[str, SignedBag]:
        combined: Dict[str, SignedBag] = {}
        for source in self.sources.values():
            combined.update(source.snapshot())
        return combined

    # ------------------------------------------------------------------ #
    # Actions
    # ------------------------------------------------------------------ #

    def available_actions(self) -> List[str]:
        actions: List[str] = []
        if self._updates:
            actions.append("update")
        for name in sorted(self.sources):
            if not self.to_source[name].is_empty():
                actions.append(f"answer:{name}")
            if not self.to_warehouse[name].is_empty():
                actions.append(f"warehouse:{name}")
        return actions

    def step(self, action: str) -> None:
        if action == "update":
            self._do_update()
        elif action.startswith("answer:"):
            self._do_answer(action.split(":", 1)[1])
        elif action.startswith("warehouse:"):
            self._do_warehouse(action.split(":", 1)[1])
        else:
            raise SimulationError(f"unknown action {action!r}")

    def _do_update(self) -> None:
        update = self._updates.popleft()
        owner = self.owners.get(update.relation)
        if owner is None:
            raise SimulationError(f"no source owns relation {update.relation!r}")
        self.sources[owner].apply_update(update)
        self._serial += 1
        self.trace.record_event(S_UP, f"U{self._serial}@{owner} = {update!r}")
        self.trace.record_source_state(self._snapshot())
        self.per_source_states[owner].append(self.sources[owner].snapshot())
        self.to_warehouse[owner].send(UpdateNotification(update, self._serial))

    def _do_answer(self, name: str) -> None:
        message = self.to_source[name].receive()
        if not isinstance(message, QueryRequest):
            raise SimulationError(f"source {name} received {message!r}")
        answer = self.sources[name].evaluate(message.query)
        self.trace.record_event(
            S_QU, f"{name}: Q{message.query_id} -> {answer.total_count()} tuple(s)"
        )
        self.to_warehouse[name].send(QueryAnswer(message.query_id, answer))

    def _do_warehouse(self, name: str) -> None:
        message = self.to_warehouse[name].receive()
        if isinstance(message, UpdateNotification):
            routed = self.algorithm.on_update(name, message)
            self.trace.record_event(W_UP, f"U{message.serial} from {name}")
        elif isinstance(message, QueryAnswer):
            routed = self.algorithm.on_answer(name, message)
            self.trace.record_event(W_ANS, f"A(Q{message.query_id}) from {name}")
        else:
            raise SimulationError(f"warehouse received {message!r}")
        for destination, request in routed:
            self.to_source[destination].send(request)
        self.trace.record_view_state(self.algorithm.view_state())

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #

    def run(self, schedule: object, max_steps: int = 1_000_000) -> Trace:
        steps = 0
        while True:
            available = self.available_actions()
            if not available:
                break
            if steps >= max_steps:
                raise SimulationError(f"exceeded {max_steps} steps")
            self.step(schedule.choose(available))
            steps += 1
        return self.trace
