"""Multi-source simulation driver — a facade over the shared kernel.

Each source gets its own FIFO channel pair, so ordering guarantees hold
*per source* only — there is no global order between one source's update
notifications and another source's query answers.  That missing order is
precisely what ECA's compensation deduction relies on, and its absence is
what the multi-source tests demonstrate.

This class is now a thin compatibility layer over
:class:`repro.kernel.sync.SyncKernel`, which owns the pump; the kernel
also accepts :data:`repro.kernel.sync.REFRESH` workload markers (routed
through the implicit client channel) so deferred-timing experiments run
over multiple sources.

Actions (for schedules):

- ``"update"``          — execute the next workload update at its owning
  source and send the notification;
- ``"answer:<name>"``   — source ``<name>`` evaluates its oldest pending
  fragment query and sends the answer;
- ``"warehouse:<name>"`` — the warehouse processes the oldest message from
  source ``<name>``'s channel (or the implicit client channel).

:class:`repro.simulation.schedules.RandomSchedule` works unchanged (it
chooses among whatever actions are available).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.kernel.sync import SyncKernel
from repro.messaging.channel import FifoChannel
from repro.source.base import Source
from repro.source.updates import Update

__all__ = ["MultiSourceSimulation"]


class MultiSourceSimulation(SyncKernel):
    """One warehouse, several sources, per-source FIFO ordering.

    Parameters
    ----------
    sources:
        name -> source database.  Relation names must be globally unique.
    algorithm:
        Any routed :class:`~repro.core.protocol.WarehouseAlgorithm`
        (multi-source families like Strobe route their own queries;
        single-source families are owner-routed by the kernel).
    workload:
        Updates, in global order; each is routed to the source owning its
        relation.  :data:`~repro.kernel.sync.REFRESH` markers become
        client refresh requests on the implicit client channel.
    """

    def __init__(
        self,
        sources: Mapping[str, Source],
        algorithm: object,
        workload: Sequence[Update],
    ) -> None:
        super().__init__(sources, algorithm, workload)

    @property
    def to_warehouse(self) -> Dict[str, FifoChannel]:
        """Per-source channels into the warehouse (legacy attribute)."""
        return {name: self.inbound[name] for name in self.sources}

    @property
    def to_source(self) -> Dict[str, FifoChannel]:
        """Per-source channels back to the sources (legacy attribute)."""
        return dict(self.outbound)
