"""Warehouse algorithms for multi-source views — one broken, one sound.

:class:`FragmentingIncremental` is the single-source incremental
algorithm (Algorithm 5.1) transplanted to multiple sources with query
fragmentation.  Each incremental query's fragments ship to their owning
sources; when the last fragment answer arrives the term is reassembled
and applied.  The transplant is *deliberately* faithful to the
single-source logic — and the tests show it is anomalous: fragments of
one query are evaluated against different global states, and no FIFO
deduction exists across sources to even detect it.  This is the
"additional issues" Section 7 warns about.

:class:`MultiSourceStoredCopies` is the SC strategy: the warehouse keeps
copies of every base relation and never queries the sources, so the
missing cross-source ordering is irrelevant — it stays complete.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ProtocolError, UpdateError
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.multisource.fragment import FragmentPlan, fragment_query
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.relational.views import View
from repro.warehouse.state import MaterializedView

Routed = List[Tuple[str, QueryRequest]]


class _PendingTerm:
    """One term awaiting fragment answers from one or more sources."""

    def __init__(self, plan: FragmentPlan) -> None:
        self.plan = plan
        self.answers: Dict[str, SignedBag] = {}

    def complete(self) -> bool:
        return set(self.answers) == set(self.plan.fragments)


class FragmentingIncremental:
    """Naive incremental maintenance over multiple sources (anomalous)."""

    name = "fragmenting-incremental"

    def __init__(
        self,
        view: View,
        owners: Dict[str, str],
        initial: Optional[SignedBag] = None,
    ) -> None:
        self.view = view
        self.owners = dict(owners)
        self.mv = MaterializedView(view, initial)
        self._next_query_id = 1
        #: query id -> pending term state.
        self._pending: Dict[int, _PendingTerm] = {}
        #: query id -> destination source (for validation).
        self._destination: Dict[int, str] = {}
        #: Count of queries whose fragments spanned several sources.
        self.spanning_queries = 0

    # ------------------------------------------------------------------ #
    # Events (called by MultiSourceSimulation)
    # ------------------------------------------------------------------ #

    def on_update(self, source: str, notification: UpdateNotification) -> Routed:
        update = notification.update
        if not self.view.involves(update.relation):
            return []
        query = self.view.substitute(update.relation, update.signed_tuple())
        routed: Routed = []
        for plan in fragment_query(query, self.owners):
            if plan.is_local():
                self.mv.apply_delta(plan.reassemble({}), strict=False)
                continue
            if plan.spans_sources():
                self.spanning_queries += 1
            pending = _PendingTerm(plan)
            for destination, fragment in plan.fragments.items():
                query_id = self._next_query_id
                self._next_query_id += 1
                self._pending[query_id] = pending
                self._destination[query_id] = destination
                routed.append(
                    (destination, QueryRequest(query_id, Query([fragment])))
                )
        return routed

    def on_answer(self, source: str, answer: QueryAnswer) -> Routed:
        try:
            pending = self._pending.pop(answer.query_id)
        except KeyError:
            raise ProtocolError(f"answer for unknown query {answer.query_id}") from None
        expected = self._destination.pop(answer.query_id)
        if expected != source:
            raise ProtocolError(
                f"fragment {answer.query_id} answered by {source}, sent to {expected}"
            )
        pending.answers[source] = answer.answer
        if pending.complete():
            # Naive: apply as soon as reassembled (clamping, like the
            # single-source baseline, so anomalies are observable rather
            # than fatal).
            self.mv.apply_delta(
                pending.plan.reassemble(pending.answers), strict=False
            )
        return []

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    def view_state(self) -> SignedBag:
        return self.mv.as_bag()

    def is_quiescent(self) -> bool:
        return not self._pending


class MultiSourceStoredCopies:
    """SC over multiple sources: correct because it never asks anything."""

    name = "multi-stored-copies"

    def __init__(
        self,
        view: View,
        owners: Dict[str, str],
        initial: Optional[SignedBag] = None,
        initial_copies: Optional[Dict[str, SignedBag]] = None,
    ) -> None:
        self.view = view
        self.owners = dict(owners)
        self.mv = MaterializedView(view, initial)
        self.copies: Dict[str, SignedBag] = {
            name: SignedBag() for name in view.relation_names
        }
        if initial_copies:
            for relation, bag in initial_copies.items():
                if relation in self.copies:
                    self.copies[relation] = bag.copy()

    def on_update(self, source: str, notification: UpdateNotification) -> Routed:
        update = notification.update
        if not self.view.involves(update.relation):
            return []
        copy = self.copies[update.relation]
        if update.is_insert:
            copy.add(update.values, 1)
        else:
            if copy.multiplicity(update.values) <= 0:
                raise UpdateError(
                    f"copy of {update.relation!r} missing {update.values!r}"
                )
            copy.add(update.values, -1)
        delta = self.view.substitute(update.relation, update.signed_tuple())
        self.mv.apply_delta(delta.evaluate(self.copies))
        return []

    def on_answer(self, source: str, answer: QueryAnswer) -> Routed:
        raise ProtocolError("stored-copies never sends queries")

    def view_state(self) -> SignedBag:
        return self.mv.as_bag()

    def is_quiescent(self) -> bool:
        return True
