"""Warehouse algorithms for multi-source views — one broken, one sound.

:class:`FragmentingIncremental` is the single-source incremental
algorithm (Algorithm 5.1) transplanted to multiple sources with query
fragmentation.  Each incremental query's fragments ship to their owning
sources; when the last fragment answer arrives the term is reassembled
and applied.  The transplant is *deliberately* faithful to the
single-source logic — and the tests show it is anomalous: fragments of
one query are evaluated against different global states, and no FIFO
deduction exists across sources to even detect it.  This is the
"additional issues" Section 7 warns about.

:class:`MultiSourceStoredCopies` is the SC strategy: the warehouse keeps
copies of every base relation and never queries the sources, so the
missing cross-source ordering is irrelevant — it stays complete.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.protocol import Routed, WarehouseAlgorithm
from repro.errors import ProtocolError, UpdateError
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.multisource.fragment import FragmentPlan, fragment_query
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.relational.views import View


class _PendingTerm:
    """One term awaiting fragment answers from one or more sources."""

    def __init__(self, plan: FragmentPlan) -> None:
        self.plan = plan
        self.answers: Dict[str, SignedBag] = {}

    def complete(self) -> bool:
        return set(self.answers) == set(self.plan.fragments)


class FragmentingIncremental(WarehouseAlgorithm):
    """Naive incremental maintenance over multiple sources (anomalous)."""

    name = "fragmenting-incremental"
    multi_source = True

    def __init__(
        self,
        view: View,
        owners: Optional[Dict[str, str]] = None,
        initial: Optional[SignedBag] = None,
    ) -> None:
        super().__init__(view, initial)
        if owners:
            self.owners = dict(owners)
        #: query id -> pending term state (shared across a plan's fragments).
        self._pending: Dict[int, _PendingTerm] = {}
        #: query id -> destination source (for validation).
        self._destination: Dict[int, str] = {}
        #: Count of queries whose fragments spanned several sources.
        self.spanning_queries = 0

    # ------------------------------------------------------------------ #
    # Routed events (called by the execution kernels)
    # ------------------------------------------------------------------ #

    def on_update(self, source: Optional[str], notification: UpdateNotification) -> Routed:
        update = notification.update
        if not self.view.involves(update.relation):
            return []
        query = self.view.substitute(update.relation, update.signed_tuple())
        routed: Routed = []
        for plan in fragment_query(query, self.owners):
            if plan.is_local():
                self.mv.apply_delta(plan.reassemble({}), strict=False)
                continue
            if plan.spans_sources():
                self.spanning_queries += 1
            pending = _PendingTerm(plan)
            for destination, fragment in plan.fragments.items():
                query_id = self._next_query_id
                self._next_query_id += 1
                self._pending[query_id] = pending
                self._destination[query_id] = destination
                routed.append(
                    (destination, QueryRequest(query_id, Query([fragment])))
                )
        return routed

    def on_answer(self, source: Optional[str], answer: QueryAnswer) -> Routed:
        # Validate before mutating (RPR012): a rejected answer must leave
        # the pending tables exactly as they were, or compensation and
        # recovery see a query that is neither pending nor answered.
        try:
            pending = self._pending[answer.query_id]
        except KeyError:
            raise ProtocolError(f"answer for unknown query {answer.query_id}") from None
        expected = self._destination[answer.query_id]
        if expected != source:
            raise ProtocolError(
                f"fragment {answer.query_id} answered by {source}, sent to {expected}"
            )
        del self._pending[answer.query_id]
        del self._destination[answer.query_id]
        pending.answers[source] = answer.answer
        if pending.complete():
            # Naive: apply as soon as reassembled (clamping, like the
            # single-source baseline, so anomalies are observable rather
            # than fatal).
            self.mv.apply_delta(
                pending.plan.reassemble(pending.answers), strict=False
            )
        return []

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    def is_quiescent(self) -> bool:
        return not self._pending

    def gauges(self) -> Dict[str, int]:
        return {
            "uqs": len(self._pending),
            "pending_terms": len({id(p) for p in self._pending.values()}),
        }

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def durable_config(self) -> Dict[str, Any]:
        return {"owners": dict(self.owners)}

    def pending_state(self) -> Dict[str, Any]:
        # A _PendingTerm may be shared by several query ids (one per
        # fragment); persist each unique record once, in first-seen order,
        # and let routes point at records by index.
        records: List[_PendingTerm] = []
        index_of: Dict[int, int] = {}
        for query_id in sorted(self._pending):
            record = self._pending[query_id]
            if id(record) not in index_of:
                index_of[id(record)] = len(records)
                records.append(record)
        return {
            "next_query_id": self._next_query_id,
            "terms": [
                {"term": record.plan.term, "answers": dict(record.answers)}
                for record in records
            ],
            "routes": {
                query_id: (index_of[id(self._pending[query_id])],
                           self._destination[query_id])
                for query_id in sorted(self._pending)
            },
            "spanning_queries": self.spanning_queries,
        }

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        self._next_query_id = state["next_query_id"]
        self.spanning_queries = state["spanning_queries"]
        records: List[_PendingTerm] = []
        for entry in state["terms"]:
            record = _PendingTerm(FragmentPlan(entry["term"], self.owners))
            record.answers = dict(entry["answers"])
            records.append(record)
        self._pending = {}
        self._destination = {}
        for query_id, (record_index, destination) in state["routes"].items():
            self._pending[query_id] = records[record_index]
            self._destination[query_id] = destination

    def pending_requests(self) -> Routed:
        out: Routed = []
        for query_id in sorted(self._pending):
            destination = self._destination[query_id]
            plan = self._pending[query_id].plan
            out.append(
                (destination,
                 QueryRequest(query_id, Query([plan.fragments[destination]])))
            )
        return out

    def pending_query_ids(self) -> List[int]:
        return sorted(self._pending)


class MultiSourceStoredCopies(WarehouseAlgorithm):
    """SC over multiple sources: correct because it never asks anything."""

    name = "multi-stored-copies"
    multi_source = True

    def __init__(
        self,
        view: View,
        owners: Optional[Dict[str, str]] = None,
        initial: Optional[SignedBag] = None,
        initial_copies: Optional[Dict[str, SignedBag]] = None,
    ) -> None:
        super().__init__(view, initial)
        if owners:
            self.owners = dict(owners)
        self.copies: Dict[str, SignedBag] = {
            name: SignedBag() for name in view.relation_names
        }
        if initial_copies:
            for relation, bag in initial_copies.items():
                if relation in self.copies:
                    self.copies[relation] = bag.copy()

    def on_update(self, source: Optional[str], notification: UpdateNotification) -> Routed:
        update = notification.update
        if not self.view.involves(update.relation):
            return []
        copy = self.copies[update.relation]
        if update.is_insert:
            copy.add(update.values, 1)
        else:
            if copy.multiplicity(update.values) <= 0:
                raise UpdateError(
                    f"copy of {update.relation!r} missing {update.values!r}"
                )
            copy.add(update.values, -1)
        delta = self.view.substitute(update.relation, update.signed_tuple())
        self.mv.apply_delta(delta.evaluate(self.copies))
        return []

    def on_answer(self, source: Optional[str], answer: QueryAnswer) -> Routed:
        raise ProtocolError("stored-copies never sends queries")

    def is_quiescent(self) -> bool:
        return True

    def gauges(self) -> Dict[str, int]:
        return {"uqs": 0, "copied_tuples": sum(
            len(bag) for bag in self.copies.values()
        )}

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def durable_config(self) -> Dict[str, Any]:
        return {"owners": dict(self.owners)}

    def pending_state(self) -> Dict[str, Any]:
        state = super().pending_state()
        state["copies"] = {name: bag.copy() for name, bag in self.copies.items()}
        return state

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        super().restore_pending_state({k: state[k] for k in ("next_query_id", "uqs")})
        self.copies = {name: bag.copy() for name, bag in state["copies"].items()}
