"""View staleness: how far the warehouse lags behind the source.

The correctness hierarchy says nothing about *freshness*: RV with a large
period and DeferredECA are strongly consistent while serving arbitrarily
old data.  The timing-policy literature the paper builds on (Hanson;
Segev & Fang's currency-based updates) studies exactly this trade-off, so
we expose it as a measurement:

Walking the trace's global event order, after every event the warehouse
view equals ``V[ss_j]`` for some source state ``j`` (any consistent
algorithm guarantees one exists); the *lag* at that moment is ``i - j``
where ``i`` is the current source state.  The profile aggregates:

- ``in_sync_fraction`` — share of event-steps with lag 0;
- ``mean_lag`` / ``max_lag`` — in units of "source updates behind".

Freshness costs messages: the staleness benchmark plots this against the
``M`` metric across ECA, RV(s), and BatchECA(b).
"""

from __future__ import annotations

from typing import List, Optional

from repro.relational.engine import evaluate_view
from repro.simulation.trace import C_REF, S_UP, Trace


class LiveStaleness:
    """Staleness as a *live* observable (feeds the obs gauge).

    :func:`staleness_profile` is exact but post-hoc: it re-evaluates the
    view over every recorded source state.  Stale View Cleaning (Krishnan
    et al., VLDB 2015) argues staleness must also be observable *while*
    the system runs, so this tracker maintains a cheap lower bound from
    the update serials alone:

    - ``executed(serial)`` — a source finished update ``serial``;
    - ``processed(serial)`` — the warehouse dispatched the notification;
    - ``pending(n)`` — the UQS size after the last warehouse event.

    ``lag()`` is then *executed − processed*, plus one when queries are
    still in flight (the view cannot yet reflect the dispatched updates
    either).  Exported live as the ``repro_staleness_lag_updates`` gauge
    by :class:`repro.obs.instrument.Observability`.
    """

    __slots__ = ("_executed", "_processed", "_pending")

    def __init__(self) -> None:
        self._executed = 0
        self._processed = 0
        self._pending = 0

    def executed(self, serial: int) -> None:
        """A source executed update ``serial`` (global serials ascend)."""
        self._executed = max(self._executed, serial)

    def processed(self, serial: int) -> None:
        """The warehouse processed the notification for ``serial``."""
        self._processed = max(self._processed, serial)

    def pending(self, count: int) -> None:
        """UQS size after the latest warehouse event."""
        self._pending = count

    def lag(self) -> int:
        """Source updates executed but not yet reflected (lower bound)."""
        lag = self._executed - self._processed
        if self._pending:
            lag += 1
        return lag

    def __repr__(self) -> str:
        return (
            f"LiveStaleness(executed={self._executed}, "
            f"processed={self._processed}, pending={self._pending})"
        )


class StalenessReport:
    """Aggregated lag profile of one run."""

    def __init__(self, lags: List[int], unmatched: int) -> None:
        #: Lag (in source updates) after each global event.
        self.lags = lags
        #: Event-steps where the view matched no source state at all
        #: (only anomalous algorithms produce these).
        self.unmatched = unmatched

    @property
    def in_sync_fraction(self) -> float:
        if not self.lags:
            return 1.0
        return sum(1 for lag in self.lags if lag == 0) / len(self.lags)

    @property
    def mean_lag(self) -> float:
        if not self.lags:
            return 0.0
        return sum(self.lags) / len(self.lags)

    @property
    def max_lag(self) -> int:
        return max(self.lags) if self.lags else 0

    def __repr__(self) -> str:
        return (
            f"StalenessReport(in_sync={self.in_sync_fraction:.2f}, "
            f"mean_lag={self.mean_lag:.2f}, max_lag={self.max_lag}, "
            f"unmatched={self.unmatched})"
        )


def staleness_profile(view, trace: Trace) -> StalenessReport:
    """Compute the lag profile of a recorded run.

    After every event, the view is matched against the *latest possible*
    source state (ties resolve optimistically, favoring freshness), and
    the distance to the current source state is recorded.
    """
    oracle = [evaluate_view(view, state) for state in trace.source_states]
    lags: List[int] = []
    unmatched = 0
    source_index = 0
    view_index = 0
    for event in trace.events:
        if event.kind == S_UP:
            source_index += 1
        elif event.kind != C_REF:
            # Every warehouse event (W_up / W_ans / W_ref) advances the
            # recorded view sequence; S_qu and C_ref do not.
            if event.kind.startswith("W_"):
                view_index += 1
        current_view = trace.view_states[min(view_index, len(trace.view_states) - 1)]
        best: Optional[int] = None
        for j in range(source_index, -1, -1):
            if oracle[j] == current_view:
                best = j
                break
        if best is None:
            unmatched += 1
        else:
            lags.append(source_index - best)
    return StalenessReport(lags, unmatched)
