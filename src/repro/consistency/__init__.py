"""Correctness hierarchy of Section 3.1, checked over recorded traces,
plus the staleness (freshness-lag) profile."""

from repro.consistency.checker import ConsistencyReport, check_trace
from repro.consistency.staleness import StalenessReport, staleness_profile

__all__ = [
    "ConsistencyReport",
    "StalenessReport",
    "check_trace",
    "staleness_profile",
]
