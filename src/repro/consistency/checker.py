"""Classify a simulation trace against the paper's correctness hierarchy.

Section 3.1 defines, for a finite execution with source states
``ss_0..ss_p`` and warehouse view states ``ws_0..ws_q``:

- **Convergence** — ``V[ws_q] = V[ss_p]``: after all activity ceases the
  view matches the final source state.
- **Weak consistency** — every view state equals ``V[ss_j]`` for *some*
  source state ``ss_j``.
- **Consistency** — weak consistency with an order-preserving assignment:
  for ``ws_i < ws_j`` there are ``ss_k <= ss_l`` with matching contents.
- **Strong consistency** — consistency + convergence.
- **Completeness** — strong consistency, and every source state is
  reflected in some view state (order-preserving in both directions).

The checker evaluates the view definition over every recorded source
snapshot (the oracle ``V[ss_i]``) and runs subsequence matching against
the recorded view states.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.relational.bag import SignedBag
from repro.relational.engine import evaluate_view
from repro.relational.views import View
from repro.simulation.trace import Trace


class ConsistencyReport:
    """Outcome of checking one trace.  Truthy accessors per property."""

    def __init__(
        self,
        convergent: bool,
        weakly_consistent: bool,
        consistent: bool,
        complete: bool,
        detail: str = "",
    ) -> None:
        self.convergent = convergent
        self.weakly_consistent = weakly_consistent
        self.consistent = consistent
        self.complete = complete
        self.detail = detail

    @property
    def strongly_consistent(self) -> bool:
        return self.consistent and self.convergent

    def level(self) -> str:
        """The strongest property satisfied, as a label."""
        if self.complete:
            return "complete"
        if self.strongly_consistent:
            return "strongly consistent"
        if self.consistent:
            return "consistent"
        if self.weakly_consistent:
            return "weakly consistent"
        if self.convergent:
            return "convergent"
        return "incorrect"

    def __repr__(self) -> str:
        return f"ConsistencyReport({self.level()})"


def _dedupe_consecutive(states: Sequence[SignedBag]) -> List[SignedBag]:
    out: List[SignedBag] = []
    for state in states:
        if not out or state != out[-1]:
            out.append(state)
    return out


def _is_subsequence(needle: Sequence[SignedBag], haystack: Sequence[SignedBag]) -> bool:
    """Greedy order-preserving containment check."""
    position = 0
    for wanted in needle:
        while position < len(haystack) and haystack[position] != wanted:
            position += 1
        if position >= len(haystack):
            return False
        position += 1
    return True


def _order_preserving_match(
    view_states: Sequence[SignedBag], oracle_states: Sequence[SignedBag]
) -> bool:
    """Consistency: each view state maps to an oracle state, non-decreasing.

    Greedy matching to the earliest feasible oracle index is optimal here
    because later view states can only benefit from a smaller pointer.
    """
    pointer = 0
    for view_state in view_states:
        index = pointer
        while index < len(oracle_states) and oracle_states[index] != view_state:
            index += 1
        if index >= len(oracle_states):
            return False
        pointer = index
    return True


def check_trace(view: View, trace: Trace) -> ConsistencyReport:
    """Evaluate a trace against every level of the hierarchy."""
    oracle: List[SignedBag] = [
        evaluate_view(view, state) for state in trace.source_states
    ]
    views: List[SignedBag] = list(trace.view_states)
    details: List[str] = []

    convergent = views[-1] == oracle[-1]
    if not convergent:
        details.append(
            f"final view {views[-1]!r} != V[final source] {oracle[-1]!r}"
        )

    oracle_set = {state for state in oracle}
    weak = True
    for index, view_state in enumerate(views):
        if view_state not in oracle_set:
            weak = False
            details.append(
                f"view state #{index} {view_state!r} matches no source state"
            )
            break

    consistent = weak and _order_preserving_match(views, oracle)
    if weak and not consistent:
        details.append("view states match source states but out of order")

    strongly = consistent and convergent
    complete = False
    if strongly:
        complete = _is_subsequence(_dedupe_consecutive(oracle), _dedupe_consecutive(views))
        if not complete:
            details.append("some source state is reflected in no view state")

    return ConsistencyReport(
        convergent=convergent,
        weakly_consistent=weak,
        consistent=consistent,
        complete=complete,
        detail="; ".join(details),
    )
