"""Cache-key vocabulary shared by the serving tier.

A serving-cache entry is addressed by ``(view_name, key)``: the view the
client reads and the projected serving key of the rows it wants.  The
serving key of a view is chosen by
:meth:`repro.relational.views.View.serving_key_positions` — the first
base-relation key the view projects (the ECA-Key analysis reused) — and
falls back to the whole row when no relation qualifies, which degrades
precision (a whole-row key caches single rows) but never correctness.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

#: The projected serving key of one or more view rows.
Key = Tuple[object, ...]

#: A fully-qualified cache address: ``(view name, serving key)``.
ViewKey = Tuple[str, Key]


def row_key(row: Sequence[object], positions: Optional[Tuple[int, ...]]) -> Key:
    """Project ``row`` down to its serving key.

    ``positions is None`` means the view has no usable serving key and the
    whole row doubles as one.
    """
    if positions is None:
        return tuple(row)
    return tuple(row[i] for i in positions)
