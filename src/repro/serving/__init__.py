"""``repro.serving`` — the bounded-staleness read-serving tier.

A cache-aside layer between read clients and the warehouse, invalidated
*precisely* by the maintenance stream (each atomic warehouse event
reports the serving keys it dirtied) and willing to serve entries up to
a configured number of maintenance events stale, annotated with their
lag.  See ``docs/SERVING.md`` for the full design.

The package is read-only by construction — it never mutates warehouse
state and never sends on a channel; lint rule RPR008 enforces this.
"""

from repro.serving.backend import WarehouseReader, reader_for
from repro.serving.cache import (
    FIFOPolicy,
    LRUPolicy,
    POLICIES,
    ReadResult,
    ServingCache,
)
from repro.serving.client import ReadClientActor, ReadMismatch
from repro.serving.keys import Key, ViewKey, row_key
from repro.serving.report import serving_report

__all__ = [
    "FIFOPolicy",
    "Key",
    "LRUPolicy",
    "POLICIES",
    "ReadClientActor",
    "ReadMismatch",
    "ReadResult",
    "ServingCache",
    "ViewKey",
    "WarehouseReader",
    "reader_for",
    "row_key",
    "serving_report",
]
