"""The read-serving client: drives cache-aside reads against the warehouse.

:class:`ReadClientActor` consumes a pre-generated read workload (a
sequence of ``(view, key)`` addresses — see
:func:`repro.workloads.random_gen.zipf_read_workload`) and performs one
cache-aside read per item.  Two properties matter more than realism:

- **Interleaving invariance.**  The actor never touches the transport
  and yields to the event loop exactly once per read, hit or miss, so
  the write-path interleaving of a run is *identical* for every cache
  configuration — including cache-off.  That is what makes hit rates
  comparable across staleness bounds and the bound-0 equivalence
  property meaningful.
- **Verifiability.**  With ``verify=True`` every served answer is
  compared, atomically (no await in between), against a direct backend
  read at the same point in the event sequence; mismatches are recorded,
  and at staleness bound 0 there must be none.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence

from repro.serving.backend import WarehouseReader
from repro.serving.cache import ReadResult, ServingCache


class ReadMismatch:
    """A cached answer that differed from the uncached one (verify mode)."""

    __slots__ = ("reader_name", "index", "result", "expected")

    def __init__(
        self, reader_name: str, index: int, result: ReadResult, expected: object
    ) -> None:
        self.reader_name = reader_name
        self.index = index
        self.result = result
        self.expected = expected

    def __repr__(self) -> str:
        return (
            f"ReadMismatch({self.reader_name}, read #{self.index}, "
            f"{self.result!r} != {self.expected!r})"
        )


class ReadClientActor:
    """Serves a read workload through the cache (or directly, cache-off)."""

    def __init__(
        self,
        name: str,
        cache: Optional[ServingCache],
        reader: WarehouseReader,
        workload: Sequence[object],
        verify: bool = False,
        metrics: object = None,
    ) -> None:
        self.name = name
        self.cache = cache
        self.reader = reader
        self._workload = list(workload)
        self._verify = verify
        self.metrics = metrics
        self.results: List[ReadResult] = []
        self.mismatches: List[ReadMismatch] = []
        if metrics is not None:
            metrics.declare("reads", "cache_hits", "cache_stale", "cache_misses")

    async def run(self) -> None:
        for index, (view_name, key) in enumerate(self._workload):
            if self.cache is None:
                value = self.reader.read(view_name, key)
                result = ReadResult(view_name, key, value, "direct")
            else:
                result = self.cache.read(
                    view_name, key, self.reader.loader(view_name, key)
                )
                if self._verify:
                    # Atomic with the serve: no await separates the cached
                    # answer from the oracle read, so both observe the same
                    # warehouse state.
                    expected = self.reader.read(view_name, key)
                    if result.value != expected:
                        self.mismatches.append(
                            ReadMismatch(self.name, index, result, expected)
                        )
            self.results.append(result)
            if self.metrics is not None:
                self.metrics.bump("reads")
                if result.status == "hit":
                    self.metrics.bump("cache_hits")
                elif result.status == "stale":
                    self.metrics.bump("cache_stale")
                elif result.status == "miss":
                    self.metrics.bump("cache_misses")
            # Exactly one scheduling point per read, regardless of hit or
            # miss — the interleaving-invariance contract (module docs).
            await asyncio.sleep(0)
