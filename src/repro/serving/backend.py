"""The serving tier's read path into the warehouse.

:class:`WarehouseReader` is the *loader* side of the cache-aside design:
on a miss, it pulls the addressed slice of the materialized view out of
whatever warehouse frontend the run uses — the sync kernel's algorithm,
the asyncio :class:`~repro.runtime.actors.WarehouseHandle`, or the
sharded merged facade — by filtering a ``view_state()`` snapshot down to
the rows whose serving key matches.  It counts every backend read, which
is the number the serving benchmark proves the cache reduces.

Strictly read-only: ``view_state()`` hands back a copy, and the reader
only ever filters it into a fresh bag (RPR008 enforces this for the
whole package).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.relational.bag import SignedBag
from repro.serving.keys import Key, ViewKey, row_key


class WarehouseReader:
    """Reads one warehouse frontend, addressed by ``(view, serving key)``.

    Parameters
    ----------
    state_fn:
        Zero-argument callable returning the frontend's current view
        contents as a :class:`SignedBag` (``algorithm.view_state`` /
        ``handle.view_state``).
    key_positions:
        ``view name -> serving-key output positions`` (``None`` value =
        whole-row keys).
    tagged:
        Whether ``state_fn`` returns catalog-style tagged rows
        (``(view_name, *row)``) — multi-view and sharded frontends do.
    """

    def __init__(
        self,
        state_fn: Callable[[], SignedBag],
        key_positions: Dict[str, Optional[Tuple[int, ...]]],
        tagged: bool = False,
    ) -> None:
        self._state_fn = state_fn
        self._key_positions = dict(key_positions)
        self._tagged = tagged
        #: Backend view reads performed (the cost the cache amortizes).
        self.reads = 0

    @property
    def view_names(self) -> List[str]:
        return sorted(self._key_positions)

    def read(self, view_name: str, key: Key) -> SignedBag:
        """All current rows of ``view_name`` whose serving key is ``key``."""
        if view_name not in self._key_positions:
            raise KeyError(f"reader serves no view named {view_name!r}")
        self.reads += 1
        positions = self._key_positions[view_name]
        out = SignedBag()
        for row, count in self._state_fn().items():
            if self._tagged:
                if row[0] != view_name:
                    continue
                bare = row[1:]
            else:
                bare = row
            if row_key(bare, positions) == key:
                out.add(bare, count)
        return out

    def loader(self, view_name: str, key: Key) -> Callable[[], SignedBag]:
        """A zero-argument loader for :meth:`ServingCache.read`."""
        return lambda: self.read(view_name, key)

    def current_keys(self) -> List[ViewKey]:
        """Every ``(view, key)`` address present right now, sorted.

        The deterministic key universe read-workload generators sample
        from (sorted on the repr so heterogeneous key values compare).
        """
        found = set()
        for row, _ in self._state_fn().items():
            if self._tagged:
                view_name = row[0]
                bare = row[1:]
                if view_name not in self._key_positions:
                    continue
            else:
                view_name = next(iter(self._key_positions))
                bare = row
            found.add((view_name, row_key(bare, self._key_positions[view_name])))
        return sorted(found, key=repr)


def reader_for(
    algorithm: object, state_fn: Optional[Callable[[], SignedBag]] = None
) -> WarehouseReader:
    """Build a reader over an algorithm or catalog (or a stand-in facade).

    ``state_fn`` overrides where snapshots come from — the asyncio harness
    passes the :class:`WarehouseHandle` (crash-proof) or the sharded
    merged facade while still deriving key layouts from the real
    algorithm/catalog.
    """
    algorithms = getattr(algorithm, "algorithms", None)
    if algorithms is not None:  # a WarehouseCatalog: tagged, multi-view
        key_positions: Dict[str, Optional[Tuple[int, ...]]] = {
            name: member.view.serving_key_positions()
            for name, member in algorithms.items()
        }
        tagged = True
    else:
        view = algorithm.view
        key_positions = {view.name: view.serving_key_positions()}
        tagged = False
    if state_fn is None:
        state_fn = algorithm.view_state
    return WarehouseReader(state_fn, key_positions, tagged=tagged)
