"""The bounded-staleness serving cache (cache-aside, precisely invalidated).

:class:`ServingCache` fronts the warehouse for read traffic.  It is a
classic cache-aside design with two twists from the literature:

- **Maintenance-driven invalidation.**  Instead of TTLs, the maintenance
  stream itself invalidates: every atomic warehouse event reports the
  serving keys its view writes dirtied (``dirty_keys()`` through
  :func:`repro.kernel.dispatch.dispatch_event`), and those exact keys —
  no more — are streamed into :meth:`invalidate`.
- **Bounded staleness** (Stale View Cleaning, arXiv:1509.07454).  An
  invalidated entry is not discarded; it remembers *how many* maintenance
  events have touched its key since it was loaded (``updates_behind``).
  Reads within the configured bound are served stale — annotated with
  that lag — and only beyond the bound does the cache go back to the
  warehouse.  Bound 0 restores strict read-your-maintenance semantics:
  any invalidation forces a reload, so a cached read always equals the
  uncached read at the same point in the event sequence.

The cache never writes warehouse state and never touches a channel; the
RPR008 lint rule holds the whole serving layer to that.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.serving.keys import Key, ViewKey


class LRUPolicy:
    """Least-recently-used eviction: hits refresh recency."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[ViewKey, None]" = OrderedDict()

    def admit(self, key: ViewKey) -> None:
        self._order[key] = None

    def touch(self, key: ViewKey) -> None:
        self._order.move_to_end(key)

    def discard(self, key: ViewKey) -> None:
        self._order.pop(key, None)

    def victim(self) -> ViewKey:
        return next(iter(self._order))


class FIFOPolicy(LRUPolicy):
    """Insertion-order eviction: hits do not refresh recency."""

    name = "fifo"

    def touch(self, key: ViewKey) -> None:
        pass


#: Pluggable eviction policies, by CLI/config name.
POLICIES: Dict[str, Callable[[], LRUPolicy]] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
}


class CacheEntry:
    """One cached answer and its staleness debt."""

    __slots__ = ("value", "updates_behind")

    def __init__(self, value: object) -> None:
        self.value = value
        #: Maintenance events that dirtied this key since the value was
        #: loaded — the entry's distance behind the warehouse, in events.
        self.updates_behind = 0


class ReadResult:
    """What one read through the serving tier returned.

    ``status`` is ``"hit"`` (fresh cache entry), ``"stale"`` (served
    within the staleness bound; ``lag`` > 0), ``"miss"`` (loaded from the
    warehouse), or ``"direct"`` (cache disabled).  ``lag`` counts the
    maintenance events the served value is behind by (0 unless stale);
    ``backend_lag`` samples the warehouse's own update lag — the
    ``repro_staleness_lag_updates`` basis — at serve time, when a lag
    probe is attached.
    """

    __slots__ = ("view_name", "key", "value", "status", "lag", "backend_lag")

    def __init__(
        self,
        view_name: str,
        key: Key,
        value: object,
        status: str,
        lag: int = 0,
        backend_lag: Optional[int] = None,
    ) -> None:
        self.view_name = view_name
        self.key = key
        self.value = value
        self.status = status
        self.lag = lag
        self.backend_lag = backend_lag

    def __repr__(self) -> str:
        return (
            f"ReadResult({self.view_name}, {self.key!r}, {self.status}, "
            f"lag={self.lag})"
        )


class ServingCache:
    """Bounded-staleness cache-aside tier keyed by ``(view, serving key)``.

    Parameters
    ----------
    capacity:
        Maximum resident entries; the eviction policy picks victims.
    staleness_bound:
        Maximum ``updates_behind`` an entry may carry and still be
        served.  0 means any invalidation forces a reload.
    policy:
        Eviction policy name (``"lru"`` or ``"fifo"``).
    """

    def __init__(
        self,
        capacity: int = 64,
        staleness_bound: int = 0,
        policy: str = "lru",
    ) -> None:
        if capacity < 1:
            raise SimulationError("serving cache capacity must be >= 1")
        if staleness_bound < 0:
            raise SimulationError("staleness bound must be >= 0")
        try:
            self.policy = POLICIES[policy]()
        except KeyError:
            raise SimulationError(
                f"unknown eviction policy {policy!r}; "
                f"choose from {sorted(POLICIES)}"
            ) from None
        self.capacity = capacity
        self.staleness_bound = staleness_bound
        self._entries: Dict[ViewKey, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.stale_served = 0
        self.invalidations = 0
        self.evictions = 0
        #: Largest lag any stale-served answer carried.
        self.max_served_lag = 0
        self._lag_probe: Optional[Callable[[], int]] = None
        self._hits_counter = None
        self._misses_counter = None
        self._stale_counter = None
        self._invalidations_counter = None

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def bind_obs(self, obs: object) -> None:
        """Register the cache counter series on an Observability registry.

        Binding is lazy and optional so cache-off (and obs-off) runs
        export byte-identical metrics to a build without a serving tier.
        """
        if obs is None:
            return
        registry = obs.registry
        self._hits_counter = registry.counter(
            "repro_cache_hits", "serving-cache fresh hits", ("view",)
        )
        self._misses_counter = registry.counter(
            "repro_cache_misses", "serving-cache misses (backend loads)", ("view",)
        )
        self._stale_counter = registry.counter(
            "repro_cache_stale_served",
            "reads served stale within the staleness bound",
            ("view",),
        )
        self._invalidations_counter = registry.counter(
            "repro_cache_invalidations",
            "precise invalidations streamed from maintenance events",
            ("view",),
        )

    def attach_lag(self, probe: Callable[[], int]) -> None:
        """Attach a warehouse-lag probe (e.g. ``obs.staleness_lag``).

        Sampled at serve time to annotate stale answers with the
        warehouse's own update lag alongside the entry's event lag.
        """
        self._lag_probe = probe

    # ------------------------------------------------------------------ #
    # The maintenance-facing side
    # ------------------------------------------------------------------ #

    def invalidate(self, keys: Iterable[ViewKey]) -> None:
        """One maintenance event dirtied ``keys``; age matching entries.

        Every key counts as an invalidation whether or not it is resident
        (the stream's volume is a property of the write path, not of what
        happens to be cached).  Resident entries age by one event.
        """
        for view_name, key in keys:
            self.invalidations += 1
            if self._invalidations_counter is not None:
                self._invalidations_counter.inc(view=view_name)
            entry = self._entries.get((view_name, key))
            if entry is not None:
                entry.updates_behind += 1

    # ------------------------------------------------------------------ #
    # The client-facing side
    # ------------------------------------------------------------------ #

    def read(
        self, view_name: str, key: Key, loader: Callable[[], object]
    ) -> ReadResult:
        """Cache-aside read: serve fresh, serve stale in bound, else load."""
        address = (view_name, key)
        entry = self._entries.get(address)
        backend_lag = self._lag_probe() if self._lag_probe is not None else None
        if entry is not None:
            if entry.updates_behind == 0:
                self.hits += 1
                if self._hits_counter is not None:
                    self._hits_counter.inc(view=view_name)
                self.policy.touch(address)
                return ReadResult(
                    view_name, key, entry.value, "hit", 0, backend_lag
                )
            if entry.updates_behind <= self.staleness_bound:
                self.stale_served += 1
                lag = entry.updates_behind
                if lag > self.max_served_lag:
                    self.max_served_lag = lag
                if self._stale_counter is not None:
                    self._stale_counter.inc(view=view_name)
                self.policy.touch(address)
                return ReadResult(
                    view_name, key, entry.value, "stale", lag, backend_lag
                )
        self.misses += 1
        if self._misses_counter is not None:
            self._misses_counter.inc(view=view_name)
        value = loader()
        if entry is not None:
            entry.value = value
            entry.updates_behind = 0
            self.policy.touch(address)
        else:
            self._admit(address, value)
        return ReadResult(view_name, key, value, "miss", 0, backend_lag)

    def _admit(self, address: ViewKey, value: object) -> None:
        if len(self._entries) >= self.capacity:
            victim = self.policy.victim()
            self.policy.discard(victim)
            del self._entries[victim]
            self.evictions += 1
        self._entries[address] = CacheEntry(value)
        self.policy.admit(address)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._entries)

    def freshness(self) -> Dict[str, Dict[str, int]]:
        """Per-view staleness: resident entries, stale entries, max lag.

        The ``monitor_data_freshness``-style surface: how far behind the
        maintenance stream each view's cached answers currently are.
        """
        out: Dict[str, Dict[str, int]] = {}
        for (view_name, _), entry in self._entries.items():
            stats = out.setdefault(
                view_name, {"entries": 0, "stale_entries": 0, "max_updates_behind": 0}
            )
            stats["entries"] += 1
            if entry.updates_behind > 0:
                stats["stale_entries"] += 1
                if entry.updates_behind > stats["max_updates_behind"]:
                    stats["max_updates_behind"] = entry.updates_behind
        return out

    def report(self) -> Dict[str, object]:
        """Run-level serving summary (the CLI's serving report)."""
        reads = self.hits + self.stale_served + self.misses
        served_cached = self.hits + self.stale_served
        return {
            "reads": reads,
            "hits": self.hits,
            "stale_served": self.stale_served,
            "misses": self.misses,
            "hit_rate": (served_cached / reads) if reads else 0.0,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "max_served_lag": self.max_served_lag,
            "staleness_bound": self.staleness_bound,
            "policy": self.policy.name,
            "capacity": self.capacity,
            "resident": len(self._entries),
        }

    def __repr__(self) -> str:
        return (
            f"ServingCache(capacity={self.capacity}, "
            f"bound={self.staleness_bound}, policy={self.policy.name}, "
            f"resident={len(self._entries)})"
        )
