"""Assembly of a run's serving/freshness report — one source of truth.

Both harnesses (the single-warehouse asyncio runtime and the sharded
runtime) end a run by packing the serving tier's counters and the
per-view :meth:`~repro.serving.cache.ServingCache.freshness` staleness
into the ``RuntimeResult.serving`` dict.  The block lives here so the
freshness API surfaced by the CLI (``repro freshness``) and the two
harnesses can never drift apart.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.serving.backend import WarehouseReader
from repro.serving.cache import ServingCache


def serving_report(
    cache: Optional[ServingCache], reader: Optional[WarehouseReader]
) -> Optional[Dict[str, object]]:
    """The ``RuntimeResult.serving`` section for one finished run.

    With a cache: the cache's run-level counters plus ``backend_reads``
    (reads that fell through to the warehouse) and ``freshness`` (the
    per-view staleness map).  Without a cache but with a reader, every
    read was a backend read.  Neither: ``None`` (no serving tier ran).
    """
    if cache is not None:
        serving = cache.report()
        serving["backend_reads"] = reader.reads if reader is not None else 0
        serving["freshness"] = cache.freshness()
        return serving
    if reader is not None:
        return {"reads": reader.reads, "backend_reads": reader.reads}
    return None
