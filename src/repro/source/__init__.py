"""Source substrates: autonomous databases that know nothing about views.

A source (Section 1.1) performs exactly two duties: it executes local
updates and notifies the warehouse, and it answers queries the warehouse
sends.  Two interchangeable implementations are provided:

- :class:`repro.source.memory.MemorySource` — base relations held as
  :class:`~repro.relational.bag.SignedBag` objects, queries evaluated by
  the in-memory relational engine;
- :class:`repro.source.sqlite.SQLiteSource` — base relations held in a
  SQLite database, queries rendered to SQL (bound tuples become constant
  sub-selects) and evaluated with bag semantics.

Both satisfy :class:`repro.source.base.Source` and return identical
answers for identical states (property-tested).
"""

from repro.source.base import Source
from repro.source.memory import MemorySource
from repro.source.sqlite import SQLiteSource
from repro.source.updates import DELETE, INSERT, Update, delete, insert

__all__ = [
    "DELETE",
    "INSERT",
    "MemorySource",
    "SQLiteSource",
    "Source",
    "Update",
    "delete",
    "insert",
]
