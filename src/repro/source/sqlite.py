"""SQLite-backed source.

Base relations live in SQLite tables (duplicates allowed — SQLite's rowid
provides bag semantics for free).  Term queries are rendered to SQL:
unbound operands become table references, bound signed tuples become
one-row constant sub-selects, and the selection condition is rendered to a
``WHERE`` clause.  ``SELECT`` without ``DISTINCT`` preserves duplicates, as
the paper requires.

The source never sees view definitions — only the queries the warehouse
ships — which is exactly the "legacy system" contract of Section 1.2.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExpressionError, UpdateError
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query, Term
from repro.relational.schema import RelationSchema
from repro.source.base import Source
from repro.source.updates import Update


def _quote(identifier: str) -> str:
    """Quote a SQL identifier."""
    return '"' + identifier.replace('"', '""') + '"'


class SQLiteSource(Source):
    """A source whose base relations are SQLite tables.

    Parameters
    ----------
    schemas:
        Relation schemas; one table per relation is created on connect.
    path:
        SQLite database path; defaults to a private in-memory database.
    """

    def __init__(
        self,
        schemas: Sequence[RelationSchema],
        initial: Optional[Dict[str, Sequence[Sequence[object]]]] = None,
        path: str = ":memory:",
    ) -> None:
        super().__init__(schemas)
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA synchronous=OFF")
        for schema in schemas:
            columns = ", ".join(_quote(a) for a in schema.attributes)
            self._conn.execute(
                f"CREATE TABLE IF NOT EXISTS {_quote(schema.name)} ({columns})"
            )
        self._conn.commit()
        if initial:
            for relation, rows in initial.items():
                self.load(relation, rows)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SQLiteSource":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def apply_update(self, update: Update) -> None:
        schema = self._check_update(update)
        table = _quote(schema.name)
        if update.is_insert:
            placeholders = ", ".join("?" for _ in update.values)
            self._conn.execute(
                f"INSERT INTO {table} VALUES ({placeholders})", update.values
            )
            self._conn.commit()
            return
        where = " AND ".join(f"{_quote(a)} = ?" for a in schema.attributes)
        cursor = self._conn.execute(
            f"DELETE FROM {table} WHERE rowid = "
            f"(SELECT rowid FROM {table} WHERE {where} LIMIT 1)",
            update.values,
        )
        self._conn.commit()
        if cursor.rowcount != 1:
            raise UpdateError(
                f"cannot delete {update.values!r} from {update.relation!r}: not present"
            )

    # ------------------------------------------------------------------ #
    # Query evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, query: Query) -> SignedBag:
        result = SignedBag()
        for term in query.terms:
            result.add_bag(self._evaluate_term(term))
        return result

    def _evaluate_term(self, term: Term) -> SignedBag:
        sql, params, multiplier = self._render_term(term)
        bag = SignedBag()
        for row in self._conn.execute(sql, params):
            bag.add(tuple(row), multiplier)
        return bag

    def _render_term(self, term: Term) -> Tuple[str, List[object], int]:
        """Render one term to ``(sql, params, per-row multiplicity)``.

        The per-row multiplicity folds together the term coefficient and
        the signs of all bound tuples, since those are constant across the
        result set.
        """
        from_parts: List[str] = []
        from_params: List[object] = []
        alias_of: Dict[int, str] = {}
        multiplier = term.coefficient
        for index, operand in enumerate(term.operands):
            alias = f"t{index}"
            alias_of[index] = alias
            if operand.is_bound:
                schema = operand.schema
                selects = ", ".join(
                    f"? AS {_quote(a)}" for a in schema.attributes
                )
                from_parts.append(f"(SELECT {selects}) AS {alias}")
                from_params.extend(operand.tuple.values)
                multiplier *= operand.tuple.sign
            else:
                # Unknown table -> SchemaError; aliases read their base.
                self.schema_for(operand.source_relation)
                from_parts.append(f"{_quote(operand.source_relation)} AS {alias}")

        def column_of(name: str) -> str:
            position = term.product.resolve(name)
            offset = 0
            for index, operand in enumerate(term.operands):
                arity = operand.schema.arity
                if position < offset + arity:
                    attribute = operand.schema.attributes[position - offset]
                    return f"{alias_of[index]}.{_quote(attribute)}"
                offset += arity
            raise ExpressionError(f"cannot map attribute {name!r} to a column")

        select_list = ", ".join(column_of(name) for name in term.projection)
        where_params: List[object] = []
        where_sql = term.condition.to_sql(column_of, where_params)
        sql = (
            f"SELECT {select_list} FROM {', '.join(from_parts)} WHERE {where_sql}"
        )
        return sql, from_params + where_params, multiplier

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, SignedBag]:
        out: Dict[str, SignedBag] = {}
        for schema in self.schemas:
            bag = SignedBag()
            for row in self._conn.execute(f"SELECT * FROM {_quote(schema.name)}"):
                bag.add(tuple(row), 1)
            out[schema.name] = bag
        return out

    def cardinality(self, relation: str) -> int:
        self.schema_for(relation)
        (count,) = self._conn.execute(
            f"SELECT COUNT(*) FROM {_quote(relation)}"
        ).fetchone()
        return int(count)

    def __repr__(self) -> str:
        sizes = ", ".join(f"{s.name}:{self.cardinality(s.name)}" for s in self.schemas)
        return f"SQLiteSource({sizes})"
