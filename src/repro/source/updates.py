"""Base-relation updates.

The paper handles two kinds of updates: insertions and deletions
(modifications are treated as a deletion followed by an insertion,
Section 4.1).  An update's *signed tuple* carries ``+`` for an insert and
``-`` for a delete, which is what gets substituted into view and query
expressions.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import UpdateError
from repro.relational.tuples import MINUS, PLUS, SignedTuple

INSERT = "insert"
DELETE = "delete"

_KINDS = (INSERT, DELETE)


class Update:
    """One single-tuple update to a base relation.

    Attributes
    ----------
    kind:
        ``"insert"`` or ``"delete"``.
    relation:
        Name of the updated base relation.
    values:
        The inserted or deleted tuple.
    """

    __slots__ = ("kind", "relation", "values")

    def __init__(self, kind: str, relation: str, values: Sequence[object]) -> None:
        if kind not in _KINDS:
            raise UpdateError(f"update kind must be one of {_KINDS}, got {kind!r}")
        self.kind = kind
        self.relation = relation
        self.values: Tuple[object, ...] = tuple(values)

    @property
    def is_insert(self) -> bool:
        return self.kind == INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind == DELETE

    @property
    def sign(self) -> int:
        """``+1`` for an insert, ``-1`` for a delete."""
        return PLUS if self.is_insert else MINUS

    def signed_tuple(self) -> SignedTuple:
        """The update's tuple with its sign — the ``tuple(U)`` of Section 4.2."""
        return SignedTuple(self.values, self.sign)

    def inverse(self) -> "Update":
        """The update that undoes this one."""
        kind = DELETE if self.is_insert else INSERT
        return Update(kind, self.relation, self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Update):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.relation == other.relation
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.relation, self.values))

    def __repr__(self) -> str:
        inner = ",".join(repr(v) for v in self.values)
        return f"{self.kind}({self.relation}, [{inner}])"


def insert(relation: str, values: Sequence[object]) -> Update:
    """Shorthand for ``Update(INSERT, relation, values)``."""
    return Update(INSERT, relation, values)


def delete(relation: str, values: Sequence[object]) -> Update:
    """Shorthand for ``Update(DELETE, relation, values)``."""
    return Update(DELETE, relation, values)


def modify(relation: str, old: Sequence[object], new: Sequence[object]) -> List[Update]:
    """A modification as the paper prescribes: delete ``old``, insert ``new``."""
    return [delete(relation, old), insert(relation, new)]
