"""Abstract source interface.

Concrete sources (in-memory, SQLite) implement this protocol.  The
simulation layer only ever calls these methods, so algorithms are agnostic
to where the base data actually lives — which is the whole premise of the
paper: the source is a black box that executes updates and answers queries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Sequence, Tuple

from repro.errors import SchemaError, UpdateError
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.relational.schema import RelationSchema
from repro.source.updates import Update


class Source(ABC):
    """A database holding base relations, oblivious to warehouse views."""

    def __init__(self, schemas: Sequence[RelationSchema]) -> None:
        names = [s.name for s in schemas]
        if len(set(names)) != len(names):
            raise SchemaError(f"source relations must have distinct names: {names}")
        self._schemas: Dict[str, RelationSchema] = {s.name: s for s in schemas}

    # ------------------------------------------------------------------ #
    # Catalog
    # ------------------------------------------------------------------ #

    @property
    def schemas(self) -> Tuple[RelationSchema, ...]:
        return tuple(self._schemas.values())

    def schema_for(self, relation: str) -> RelationSchema:
        try:
            return self._schemas[relation]
        except KeyError:
            raise SchemaError(f"source has no relation {relation!r}") from None

    def _check_update(self, update: Update) -> RelationSchema:
        schema = self.schema_for(update.relation)
        schema.validate_row(update.values)
        return schema

    # ------------------------------------------------------------------ #
    # The two source duties
    # ------------------------------------------------------------------ #

    @abstractmethod
    def apply_update(self, update: Update) -> None:
        """Execute an insert or delete against the base data.

        Deleting a tuple removes *one* occurrence (bag semantics); deleting
        a tuple that is not present raises :class:`UpdateError`.
        """

    @abstractmethod
    def evaluate(self, query: Query) -> SignedBag:
        """Evaluate a (possibly multi-term, signed) query on current data."""

    # ------------------------------------------------------------------ #
    # Introspection used by the test oracle and the cost model.  A real
    # legacy source would not offer these; the warehouse algorithms never
    # call them.
    # ------------------------------------------------------------------ #

    @abstractmethod
    def snapshot(self) -> Dict[str, SignedBag]:
        """Deep copy of the current base relations (oracle use only)."""

    @abstractmethod
    def cardinality(self, relation: str) -> int:
        """Current number of tuples (with duplicates) in ``relation``."""

    def load(self, relation: str, rows: Iterable[Sequence[object]]) -> None:
        """Bulk-insert initial data (not counted as notifiable updates)."""
        from repro.source.updates import insert

        for row in rows:
            self.apply_update(insert(relation, row))

    def total_cardinality(self) -> int:
        return sum(self.cardinality(name) for name in self._schemas)
