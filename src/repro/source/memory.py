"""In-memory source: base relations as signed bags.

The reference implementation — small, obviously correct, and used as the
oracle against which the SQLite source is property-tested.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.errors import UpdateError
from repro.relational.bag import SignedBag
from repro.relational.engine import evaluate_query
from repro.relational.expressions import Query
from repro.relational.schema import RelationSchema
from repro.source.base import Source
from repro.source.updates import Update


class MemorySource(Source):
    """Base relations stored in Python dictionaries."""

    def __init__(
        self,
        schemas: Sequence[RelationSchema],
        initial: Dict[str, Iterable[Sequence[object]]] = None,
    ) -> None:
        super().__init__(schemas)
        self._relations: Dict[str, SignedBag] = {s.name: SignedBag() for s in schemas}
        if initial:
            for relation, rows in initial.items():
                self.load(relation, rows)

    def apply_update(self, update: Update) -> None:
        schema = self._check_update(update)
        bag = self._relations[schema.name]
        if update.is_insert:
            bag.add(update.values, 1)
            return
        if bag.multiplicity(update.values) <= 0:
            raise UpdateError(
                f"cannot delete {update.values!r} from {update.relation!r}: not present"
            )
        bag.add(update.values, -1)

    def evaluate(self, query: Query) -> SignedBag:
        # Hash-join engine; equivalent to the reference query.evaluate()
        # (property-tested) but fast enough for benchmark workloads.
        return evaluate_query(query, self._relations)

    def snapshot(self) -> Dict[str, SignedBag]:
        return {name: bag.copy() for name, bag in self._relations.items()}

    def cardinality(self, relation: str) -> int:
        self.schema_for(relation)
        return self._relations[relation].total_count()

    def relation(self, name: str) -> SignedBag:
        """Direct read access to one base relation (oracle use only)."""
        self.schema_for(name)
        return self._relations[name].copy()

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}:{bag.total_count()}" for name, bag in self._relations.items()
        )
        return f"MemorySource({sizes})"
