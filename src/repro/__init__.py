"""repro — View Maintenance in a Warehousing Environment (SIGMOD 1995).

A full reproduction of Zhuge, Garcia-Molina, Hammer & Widom's warehouse
view-maintenance system: the signed-tuple relational algebra, the
autonomous source substrates (in-memory and SQLite), the FIFO messaging
model, the ECA family of compensating algorithms plus every baseline the
paper discusses, the Section 3 correctness hierarchy as an executable
checker, and the Section 6 / Appendix D cost model with both analytic and
measured implementations.

Quickstart::

    from repro import (
        RelationSchema, View, MemorySource, ECA, Simulation,
        BestCaseSchedule, insert,
    )
    from repro.relational.engine import evaluate_view

    r1 = RelationSchema("r1", ("W", "X"))
    r2 = RelationSchema("r2", ("X", "Y"))
    view = View.natural_join("V", [r1, r2], ["W"])
    source = MemorySource([r1, r2], {"r1": [(1, 2)], "r2": [(2, 4)]})
    warehouse = ECA(view, evaluate_view(view, source.snapshot()))
    sim = Simulation(source, warehouse, [insert("r2", (2, 3))])
    sim.run(BestCaseSchedule())
    print(warehouse.mv.rows())   # [(1,), (1,)]
"""

from repro.consistency import (
    ConsistencyReport,
    StalenessReport,
    check_trace,
    staleness_profile,
)
from repro.core import (
    ALGORITHMS,
    BasicAlgorithm,
    BatchECA,
    DeferredECA,
    ECA,
    ECAKey,
    ECALocal,
    LCA,
    RecomputeView,
    StoredCopies,
    WarehouseAlgorithm,
    create_algorithm,
)
from repro.costmodel import (
    CostRecorder,
    IndexCatalog,
    PaperParameters,
    Scenario1Estimator,
    Scenario2Estimator,
)
from repro.errors import (
    ChannelEmpty,
    ConsistencyViolation,
    ExpressionError,
    ProtocolError,
    ReproError,
    SchemaError,
    SignError,
    SimulationError,
    TransportClosed,
    UpdateError,
    ViewStateError,
)
from repro.relational import (
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    MINUS,
    Not,
    Or,
    PLUS,
    Query,
    RelationSchema,
    SignedBag,
    SignedTuple,
    Term,
    TrueCondition,
    UnionView,
    View,
    attr,
)
from repro.runtime import (
    FaultPlan,
    FaultyTransport,
    InMemoryTransport,
    RuntimeResult,
    run_concurrent,
)
from repro.simulation import (
    REFRESH,
    BestCaseSchedule,
    RandomSchedule,
    Schedule,
    ScriptedSchedule,
    Simulation,
    Trace,
    WorstCaseSchedule,
    run_simulation,
)
from repro.source import (
    MemorySource,
    SQLiteSource,
    Source,
    Update,
    delete,
    insert,
)
from repro.warehouse import MaterializedView, WarehouseCatalog

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "And",
    "Attr",
    "BasicAlgorithm",
    "BatchECA",
    "BestCaseSchedule",
    "ChannelEmpty",
    "DeferredECA",
    "Comparison",
    "Condition",
    "ConsistencyReport",
    "ConsistencyViolation",
    "Const",
    "CostRecorder",
    "ECA",
    "ECAKey",
    "ECALocal",
    "ExpressionError",
    "FaultPlan",
    "FaultyTransport",
    "InMemoryTransport",
    "IndexCatalog",
    "LCA",
    "MINUS",
    "MaterializedView",
    "MemorySource",
    "Not",
    "Or",
    "PLUS",
    "PaperParameters",
    "ProtocolError",
    "Query",
    "REFRESH",
    "RandomSchedule",
    "RecomputeView",
    "RelationSchema",
    "ReproError",
    "RuntimeResult",
    "SQLiteSource",
    "Scenario1Estimator",
    "Scenario2Estimator",
    "Schedule",
    "SchemaError",
    "ScriptedSchedule",
    "SignError",
    "SignedBag",
    "SignedTuple",
    "Simulation",
    "SimulationError",
    "Source",
    "StalenessReport",
    "StoredCopies",
    "Term",
    "Trace",
    "TransportClosed",
    "TrueCondition",
    "UnionView",
    "Update",
    "UpdateError",
    "View",
    "ViewStateError",
    "WarehouseAlgorithm",
    "WarehouseCatalog",
    "WorstCaseSchedule",
    "attr",
    "check_trace",
    "create_algorithm",
    "delete",
    "insert",
    "run_concurrent",
    "run_simulation",
    "staleness_profile",
]
