"""A multi-view warehouse: one update stream, many maintained views.

Section 7: "in a warehouse consisting of multiple views where each view
is over data from a single source, ECA is simply applied to each view
separately."  :class:`WarehouseCatalog` is that sentence as a component:
it implements the same event protocol as a single algorithm, fans every
notification out to the per-view algorithms (each of which may be a
different member of the family — ECA here, ECA-Key there, a deferred view
in the corner), multiplexes their query ids onto one id space, and routes
answers back.

For trace-based checking, the catalog is itself a "view" whose rows are
tagged with their view name: ``catalog.view_state()`` returns
``(view_name, *row)`` tuples, and :meth:`evaluate_oracle` computes the
same tagged union from a raw source state — so ``check_trace(catalog,
trace)`` and ``staleness_profile(catalog, trace)`` work unchanged.

**What joint checking reveals** (and the tests pin down): each view is
individually strongly consistent, but the *combined* warehouse state is
in general only **convergent** — views advance through source states at
different rates (a local key-delete lands instantly while a neighbor's
query is still in flight), so the tagged union can mix ``V1[ss_2]`` with
``V2[ss_0]``, a state no single source moment produced.  This is the
*mutual consistency* problem the authors formalized in their Strobe
follow-up; Section 7's "ECA is simply applied to each view separately"
buys per-view consistency only.  Use :meth:`per_view_trace` to check each
view on its own timeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.messaging.messages import (
    QueryAnswer,
    QueryRequest,
    UpdateBatch,
    UpdateNotification,
)
from repro.relational.bag import SignedBag

if TYPE_CHECKING:  # avoid a package-level import cycle with repro.core
    from repro.core.protocol import Routed, WarehouseAlgorithm


class WarehouseCatalog:
    """Several views maintained side by side behind one protocol."""

    name = "catalog"
    multi_source = False
    codec_tag = "algo.catalog"

    def __init__(self, algorithms: "Mapping[str, WarehouseAlgorithm]") -> None:
        if not algorithms:
            raise ProtocolError("a warehouse catalog needs at least one view")
        self.algorithms: "Dict[str, WarehouseAlgorithm]" = dict(algorithms)
        self._next_query_id = 1
        self.owners: Dict[str, str] = {}
        #: global query id -> (view name, that view's local query id)
        self._routes: Dict[int, Tuple[str, int]] = {}
        #: Per-view state history, one snapshot per warehouse event (the
        #: initial state first) — feeds :meth:`per_view_trace`.
        self._history: Dict[str, List[SignedBag]] = {
            name: [algorithm.view_state()]
            for name, algorithm in self.algorithms.items()
        }

    def _record(self) -> None:
        for name, algorithm in self.algorithms.items():
            self._history[name].append(algorithm.view_state())

    # ------------------------------------------------------------------ #
    # Routed protocol events
    # ------------------------------------------------------------------ #

    def bind_owners(self, owners: Dict[str, str]) -> None:
        if not self.owners:
            self.owners = dict(owners)
        for algorithm in self.algorithms.values():
            algorithm.bind_owners(owners)

    def on_update(
        self, source: Optional[str], notification: UpdateNotification
    ) -> "Routed":
        out: "Routed" = []
        for view_name, algorithm in self.algorithms.items():
            for destination, request in algorithm.on_update(source, notification):
                out.append((destination, self._remap(view_name, request)))
        self._record()
        return out

    def on_update_batch(self, source: Optional[str], batch: "UpdateBatch") -> "Routed":
        """Fan a kernel-coalesced run out to every member as one event.

        Each member sees the same atomic ``UpdateBatch``, so views whose
        algorithm family answers a run with a single compensating query
        keep that behavior inside the catalog; the catalog itself only
        remaps the resulting query ids, exactly as :meth:`on_update`.
        """
        out: "Routed" = []
        for view_name, algorithm in self.algorithms.items():
            for destination, request in algorithm.on_update_batch(source, batch):
                out.append((destination, self._remap(view_name, request)))
        self._record()
        return out

    def on_answer(self, source: Optional[str], answer: QueryAnswer) -> "Routed":
        try:
            view_name, local_id = self._routes.pop(answer.query_id)
        except KeyError:
            raise ProtocolError(
                f"catalog received answer for unknown query {answer.query_id}"
            ) from None
        algorithm = self.algorithms[view_name]
        out: "Routed" = []
        for destination, request in algorithm.on_answer(
            source, QueryAnswer(local_id, answer.answer)
        ):
            out.append((destination, self._remap(view_name, request)))
        self._record()
        return out

    def on_refresh(self) -> "Routed":
        out: "Routed" = []
        for view_name, algorithm in self.algorithms.items():
            for destination, request in algorithm.on_refresh():
                out.append((destination, self._remap(view_name, request)))
        self._record()
        return out

    def _remap(self, view_name: str, request: QueryRequest) -> QueryRequest:
        global_id = self._next_query_id
        self._next_query_id += 1
        self._routes[global_id] = (view_name, request.query_id)
        return QueryRequest(global_id, request.query)

    # ------------------------------------------------------------------ #
    # State — the catalog poses as one big tagged view
    # ------------------------------------------------------------------ #

    def view_state(self) -> SignedBag:
        combined = SignedBag()
        for view_name, algorithm in self.algorithms.items():
            for row, count in algorithm.view_state().items():
                combined.add((view_name,) + row, count)
        return combined

    def evaluate_oracle(self, state: Mapping[str, SignedBag]) -> SignedBag:
        """Tagged union of every view evaluated over a raw source state."""
        from repro.relational.engine import evaluate_view

        combined = SignedBag()
        for view_name, algorithm in self.algorithms.items():
            for row, count in evaluate_view(algorithm.view, state).items():
                combined.add((view_name,) + row, count)
        return combined

    def state_of(self, view_name: str) -> SignedBag:
        return self.algorithms[view_name].view_state()

    def dirty_keys(self) -> Set[Tuple[str, Tuple[object, ...]]]:
        """Union of member dirty keys, re-tagged with the catalog key.

        A member's own view name may differ from the name it is registered
        under, so entries carry the registration key — the name clients
        address reads with.
        """
        out: Set[Tuple[str, Tuple[object, ...]]] = set()
        for view_name, algorithm in self.algorithms.items():
            for _, key in algorithm.dirty_keys():
                out.add((view_name, key))
        return out

    def view_history(self, view_name: str) -> List[SignedBag]:
        """One member view's state after every catalog event, oldest first.

        The per-view timeline the sharded consistency proofs compare: a
        member view's history on a 2-shard run must classify exactly like
        the same view's history on the unsharded catalog.
        """
        return list(self._history[view_name])

    def per_view_trace(self, view_name: str, trace) -> "object":
        """A trace whose view states are one member view's own history.

        ``check_trace(catalog.algorithms[name].view,
        catalog.per_view_trace(name, trace))`` classifies that view on its
        own timeline — the per-view guarantee Section 7 promises.
        """
        from repro.simulation.trace import Trace

        solo = Trace()
        solo.events = list(trace.events)
        solo.source_states = list(trace.source_states)
        solo.view_states = list(self._history[view_name])
        return solo

    @property
    def uqs(self) -> Dict[int, object]:
        """Pending global query ids (driver quiescence check)."""
        return {
            global_id: None
            for global_id, (view_name, local_id) in self._routes.items()
        }

    def is_quiescent(self) -> bool:
        return not self._routes and all(
            algorithm.is_quiescent() for algorithm in self.algorithms.values()
        )

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def pending_state(self) -> Dict[str, Any]:
        """Catalog-level bookkeeping only; member algorithms persist
        their own state through the durability codec."""
        return {
            "next_query_id": self._next_query_id,
            "routes": dict(self._routes),
        }

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        self._next_query_id = state["next_query_id"]
        self._routes = {
            global_id: (view_name, local_id)
            for global_id, (view_name, local_id) in state["routes"].items()
        }
        # Per-view history restarts at the recovered state; per_view_trace
        # over a crash-spanning run is out of scope for recovery.
        self._history = {
            name: [algorithm.view_state()]
            for name, algorithm in self.algorithms.items()
        }

    def pending_requests(self) -> "Routed":
        # Members report their own in-flight requests (with destinations);
        # remap local ids back to this catalog's global id space.
        local_to_global = {
            (view_name, local_id): global_id
            for global_id, (view_name, local_id) in self._routes.items()
        }
        out: "Routed" = []
        for view_name, algorithm in self.algorithms.items():
            for destination, request in algorithm.pending_requests():
                global_id = local_to_global[(view_name, request.query_id)]
                out.append((destination, QueryRequest(global_id, request.query)))
        out.sort(key=lambda pair: pair[1].query_id)
        return out

    def pending_query_ids(self) -> List[int]:
        return sorted(self._routes)

    def gauges(self) -> Dict[str, int]:
        """Per-view UQS sizes plus the global route count (obs layer)."""
        out = {"uqs": len(self._routes)}
        for name, algorithm in self.algorithms.items():
            out[f"uqs:{name}"] = len(algorithm.uqs)
        return out

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{algo.name}" for name, algo in self.algorithms.items()
        )
        return f"WarehouseCatalog({parts})"
