"""A multi-view warehouse: one update stream, many maintained views.

Section 7: "in a warehouse consisting of multiple views where each view
is over data from a single source, ECA is simply applied to each view
separately."  :class:`WarehouseCatalog` is that sentence as a component:
it implements the same event protocol as a single algorithm, fans every
notification out to the per-view algorithms (each of which may be a
different member of the family — ECA here, ECA-Key there, a deferred view
in the corner), and routes answers back.

Between the members and the wire sits a
:class:`~repro.warehouse.planner.CompensationPlanner`: with
``share_compensation=False`` (the default) it is a byte-identical
re-expression of the historical 1:1 query-id multiplexer, while with
``share_compensation=True`` member queries with equal canonical
signatures inside one atomic event collapse into a single
:class:`~repro.messaging.messages.QueryRequest` whose one answer fans
back through every subscribing view's own compensation — N overlapping
views cost one source round trip instead of N (``docs/MULTIVIEW.md``).

For trace-based checking, the catalog is itself a "view" whose rows are
tagged with their view name: ``catalog.view_state()`` returns
``(view_name, *row)`` tuples, and :meth:`evaluate_oracle` computes the
same tagged union from a raw source state — so ``check_trace(catalog,
trace)`` and ``staleness_profile(catalog, trace)`` work unchanged.

**What joint checking reveals** (and the tests pin down): each view is
individually strongly consistent, but the *combined* warehouse state is
in general only **convergent** — views advance through source states at
different rates (a local key-delete lands instantly while a neighbor's
query is still in flight), so the tagged union can mix ``V1[ss_2]`` with
``V2[ss_0]``, a state no single source moment produced.  This is the
*mutual consistency* problem the authors formalized in their Strobe
follow-up; Section 7's "ECA is simply applied to each view separately"
buys per-view consistency only.  Use :meth:`per_view_trace` to check each
view on its own timeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.messaging.messages import (
    QueryAnswer,
    UpdateBatch,
    UpdateNotification,
)
from repro.relational.bag import SignedBag
from repro.warehouse.planner import CompensationPlanner, MemberRequest

if TYPE_CHECKING:  # avoid a package-level import cycle with repro.core
    from repro.core.protocol import Routed, WarehouseAlgorithm


class WarehouseCatalog:
    """Several views maintained side by side behind one protocol."""

    name = "catalog"
    multi_source = False
    codec_tag = "algo.catalog"

    def __init__(
        self,
        algorithms: "Mapping[str, WarehouseAlgorithm]",
        share_compensation: bool = False,
    ) -> None:
        if not algorithms:
            raise ProtocolError("a warehouse catalog needs at least one view")
        self.algorithms: "Dict[str, WarehouseAlgorithm]" = dict(algorithms)
        self.owners: Dict[str, str] = {}
        self._planner = CompensationPlanner(share=share_compensation)
        #: Per-view state history, one snapshot per warehouse event (the
        #: initial state first) — feeds :meth:`per_view_trace`.
        self._history: Dict[str, List[SignedBag]] = {
            name: [algorithm.view_state()]
            for name, algorithm in self.algorithms.items()
        }

    @property
    def share_compensation(self) -> bool:
        """Whether same-event duplicate compensating queries are shared."""
        return self._planner.share

    def _record(self) -> None:
        for name, algorithm in self.algorithms.items():
            self._history[name].append(algorithm.view_state())

    # ------------------------------------------------------------------ #
    # Routed protocol events
    # ------------------------------------------------------------------ #

    def bind_owners(self, owners: Dict[str, str]) -> None:
        if not self.owners:
            self.owners = dict(owners)
        for algorithm in self.algorithms.values():
            algorithm.bind_owners(owners)

    def on_update(
        self, source: Optional[str], notification: UpdateNotification
    ) -> "Routed":
        members: List[MemberRequest] = []
        for view_name, algorithm in self.algorithms.items():
            for destination, request in algorithm.on_update(source, notification):
                members.append((view_name, destination, request))
        out = self._planner.plan(members)
        self._record()
        return out

    def on_update_batch(self, source: Optional[str], batch: "UpdateBatch") -> "Routed":
        """Fan a kernel-coalesced run out to every member as one event.

        Each member sees the same atomic ``UpdateBatch``, so views whose
        algorithm family answers a run with a single compensating query
        keep that behavior inside the catalog; the catalog itself only
        plans the resulting query ids, exactly as :meth:`on_update`.
        """
        members: List[MemberRequest] = []
        for view_name, algorithm in self.algorithms.items():
            for destination, request in algorithm.on_update_batch(source, batch):
                members.append((view_name, destination, request))
        out = self._planner.plan(members)
        self._record()
        return out

    def on_answer(self, source: Optional[str], answer: QueryAnswer) -> "Routed":
        """Fan one (possibly shared) answer to every subscribing view.

        All subscribers absorb the answer within this one atomic event —
        exactly the bag each would have received from its own private
        request, because sharing only ever merged signature-equal
        queries.  Follow-up requests the subscribers emit are planned
        together, so even recovery-time or refresh-time duplicates
        collapse.
        """
        subscribers = self._planner.retire(answer.query_id)
        members: List[MemberRequest] = []
        for view_name, local_id in subscribers:
            algorithm = self.algorithms[view_name]
            for destination, request in algorithm.on_answer(
                source, QueryAnswer(local_id, answer.answer)
            ):
                members.append((view_name, destination, request))
        out = self._planner.plan(members)
        self._record()
        return out

    def on_refresh(self) -> "Routed":
        members: List[MemberRequest] = []
        for view_name, algorithm in self.algorithms.items():
            for destination, request in algorithm.on_refresh():
                members.append((view_name, destination, request))
        out = self._planner.plan(members)
        self._record()
        return out

    # ------------------------------------------------------------------ #
    # State — the catalog poses as one big tagged view
    # ------------------------------------------------------------------ #

    def view_state(self) -> SignedBag:
        combined = SignedBag()
        for view_name, algorithm in self.algorithms.items():
            for row, count in algorithm.view_state().items():
                combined.add((view_name,) + row, count)
        return combined

    def evaluate_oracle(self, state: Mapping[str, SignedBag]) -> SignedBag:
        """Tagged union of every view evaluated over a raw source state."""
        from repro.relational.engine import evaluate_view

        combined = SignedBag()
        for view_name, algorithm in self.algorithms.items():
            for row, count in evaluate_view(algorithm.view, state).items():
                combined.add((view_name,) + row, count)
        return combined

    def state_of(self, view_name: str) -> SignedBag:
        return self.algorithms[view_name].view_state()

    def dirty_keys(self) -> Set[Tuple[str, Tuple[object, ...]]]:
        """Union of member dirty keys, re-tagged with the catalog key.

        A member's own view name may differ from the name it is registered
        under, so entries carry the registration key — the name clients
        address reads with.  A shared answer dirties every subscriber
        view within the one event, so the serving tier's invalidation
        stream stays precise under sharing.
        """
        out: Set[Tuple[str, Tuple[object, ...]]] = set()
        for view_name, algorithm in self.algorithms.items():
            for _, key in algorithm.dirty_keys():
                out.add((view_name, key))
        return out

    def view_history(self, view_name: str) -> List[SignedBag]:
        """One member view's state after every catalog event, oldest first.

        The per-view timeline the sharded consistency proofs compare: a
        member view's history on a 2-shard run must classify exactly like
        the same view's history on the unsharded catalog.
        """
        return list(self._history[view_name])

    def per_view_trace(self, view_name: str, trace: Any) -> Any:
        """A trace whose view states are one member view's own history.

        ``check_trace(catalog.algorithms[name].view,
        catalog.per_view_trace(name, trace))`` classifies that view on its
        own timeline — the per-view guarantee Section 7 promises.
        """
        from repro.simulation.trace import Trace

        solo = Trace()
        solo.events = list(trace.events)
        solo.source_states = list(trace.source_states)
        solo.view_states = list(self._history[view_name])
        return solo

    @property
    def uqs(self) -> Dict[int, object]:
        """Pending global query ids (driver quiescence check)."""
        return {global_id: None for global_id in self._planner.pending_ids()}

    def is_quiescent(self) -> bool:
        return self._planner.is_quiescent() and all(
            algorithm.is_quiescent() for algorithm in self.algorithms.values()
        )

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def pending_state(self) -> Dict[str, Any]:
        """Catalog-level bookkeeping only; member algorithms persist
        their own state through the durability codec."""
        return self._planner.state()

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        self._planner.restore(state)
        # Per-view history restarts at the recovered state; per_view_trace
        # over a crash-spanning run is out of scope for recovery.
        self._history = {
            name: [algorithm.view_state()]
            for name, algorithm in self.algorithms.items()
        }

    def pending_requests(self) -> "Routed":
        """Re-issue one request per pending global id after a crash.

        A shared query is re-sent **once**: the first subscriber's local
        pending query stands in for the group (signature equality makes
        every subscriber's expression interchangeable), and the recovered
        answer fans back through the restored route table exactly as the
        lost answer would have.
        """
        from repro.messaging.messages import QueryRequest

        local_pending: Dict[Tuple[str, int], Tuple[Optional[str], QueryRequest]] = {}
        for view_name, algorithm in self.algorithms.items():
            for destination, request in algorithm.pending_requests():
                local_pending[(view_name, request.query_id)] = (
                    destination,
                    request,
                )
        out: "Routed" = []
        for global_id in self._planner.pending_ids():
            view_name, local_id = self._planner.subscribers(global_id)[0]
            destination, request = local_pending[(view_name, local_id)]
            out.append((destination, QueryRequest(global_id, request.query)))
        return out

    def pending_query_ids(self) -> List[int]:
        return self._planner.pending_ids()

    def gauges(self) -> Dict[str, int]:
        """Per-view UQS sizes plus the global route count (obs layer)."""
        out = {"uqs": self._planner.pending_count()}
        for name, algorithm in self.algorithms.items():
            out[f"uqs:{name}"] = len(algorithm.uqs)
        return out

    def shared_query_stats(self) -> Tuple[int, int]:
        """``(issued, saved)`` — requests shipped vs. round trips avoided.

        Exported by the observability layer as the
        ``repro_shared_queries_issued`` / ``repro_shared_queries_saved``
        series; both counters are cumulative over the catalog's life.
        """
        return self._planner.issued, self._planner.saved

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{algo.name}" for name, algo in self.algorithms.items()
        )
        mode = ", shared" if self.share_compensation else ""
        return f"WarehouseCatalog({parts}{mode})"
