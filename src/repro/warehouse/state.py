"""Materialized view storage with duplicate retention.

Duplicates (or at least a replication count) are essential for handling
deletions incrementally (Section 1.1, footnote 1), so the view contents are
a non-negative :class:`~repro.relational.bag.SignedBag`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import ViewStateError
from repro.relational.bag import SignedBag
from repro.relational.views import View

Row = Tuple[object, ...]


class MaterializedView:
    """The warehouse's stored copy of one view's contents.

    Parameters
    ----------
    view:
        The view definition this materialization belongs to.
    initial:
        Initial contents; defaults to empty.  Must be non-negative.
    """

    def __init__(self, view: View, initial: SignedBag = None) -> None:
        self.view = view
        contents = initial.copy() if initial is not None else SignedBag()
        if not contents.is_nonnegative():
            raise ViewStateError(
                f"initial contents of {view.name!r} contain negative tuples"
            )
        self._contents = contents
        #: Rows whose multiplicity changed since the last ``drain_dirty``.
        #: The serving tier turns these into precise cache invalidations;
        #: the initial contents are not dirty (caches start empty).
        self._dirty: Set[Row] = set()

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def as_bag(self) -> SignedBag:
        """A copy of the current contents."""
        return self._contents.copy()

    def rows(self) -> List[Row]:
        """Current rows with duplicates, in a stable order."""
        return self._contents.expand_rows()

    def multiplicity(self, row: Sequence[object]) -> int:
        return self._contents.multiplicity(row)

    def contents_pairs(self) -> List[Tuple[Row, int]]:
        """Canonical ``(row, multiplicity)`` pairs of the current contents.

        The durability codec persists view contents through this so equal
        views always serialize identically regardless of insertion order.
        """
        return self._contents.to_pairs()

    def cardinality(self) -> int:
        return self._contents.total_count()

    def is_empty(self) -> bool:
        return self._contents.is_empty()

    def drain_dirty(self) -> Set[Row]:
        """Rows touched by writes since the last drain (and reset the set).

        Every write path (:meth:`apply_delta`, :meth:`replace`,
        :meth:`key_delete`) records the rows whose multiplicity it changed;
        over-reporting is allowed (a clamped delta row counts), dropping a
        changed row is not — cache invalidation depends on completeness.
        """
        dirtied = self._dirty
        self._dirty = set()
        return dirtied

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def apply_delta(
        self, delta: SignedBag, strict: bool = True, on_negative: str = None
    ) -> None:
        """``MV <- MV + delta``.

        ``on_negative`` controls what happens when the result would hold a
        tuple with negative multiplicity:

        - ``"raise"`` (default, also ``strict=True``): raise
          :class:`ViewStateError` — in a correct algorithm the net effect
          applied to the view never deletes tuples that are not there.
        - ``"clamp"`` (also ``strict=False``): drop negative entries; this
          is what a naive system that "fails to delete a missing tuple"
          would do, and lets the anomalous baseline run to completion.
        - ``"allow"``: keep signed counts.  Used by the unbuffered ECA
          variant (Section 5.2's convergent-but-not-consistent strawman),
          whose intermediate states are by design invalid.
        """
        if on_negative is None:
            on_negative = "raise" if strict else "clamp"
        if on_negative not in ("raise", "clamp", "allow"):
            raise ValueError(f"unknown on_negative policy {on_negative!r}")
        updated = self._contents + delta
        if not updated.is_nonnegative() and on_negative != "allow":
            if on_negative == "raise":
                negatives = [row for row, count in updated.items() if count < 0]
                raise ViewStateError(
                    f"delta drives view {self.view.name!r} negative on {negatives!r}"
                )
            clamped = SignedBag()
            for row, count in updated.items():
                if count > 0:
                    clamped.add(row, count)
            updated = clamped
        self._contents = updated
        for row, _ in delta.items():
            self._dirty.add(row)

    def replace(self, contents: SignedBag) -> None:
        """Install a complete new state (used by RV and by ECA-Key)."""
        if not contents.is_nonnegative():
            raise ViewStateError(
                f"replacement contents for {self.view.name!r} contain negative tuples"
            )
        # Dirty exactly the rows whose multiplicity differs between the
        # outgoing and incoming states (the bag difference holds them all).
        for row, _ in (contents - self._contents).items():
            self._dirty.add(row)
        self._contents = contents.copy()

    def key_delete(self, relation: str, values: Sequence[object]) -> int:
        """The ``key-delete(MV, r, t)`` operation of Section 5.4.

        Removes every view tuple whose columns corresponding to
        ``relation``'s key equal the key of ``values``.  Returns the number
        of tuple occurrences removed.
        """
        return key_delete(
            self._contents, self.view, relation, values, dirtied=self._dirty
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaterializedView):
            return NotImplemented
        return self.view == other.view and self._contents == other._contents

    def __repr__(self) -> str:
        return f"MaterializedView({self.view.name}, {self._contents!r})"


def key_delete(
    contents: SignedBag,
    view: View,
    relation: str,
    values: Sequence[object],
    dirtied: Optional[Set[Row]] = None,
) -> int:
    """Delete from ``contents`` all tuples matching ``values``' key.

    Standalone so ECA-Key can apply key-deletes to its COLLECT working copy
    as well as to the installed view.  ``dirtied``, when given, collects the
    removed rows (the installed-view caller threads its dirty set through).
    """
    schema = view.schema_for(relation)
    key = schema.key_of(values)
    positions = view.key_output_positions(relation)
    doomed = [
        row
        for row, _ in contents.items()
        if tuple(row[i] for i in positions) == key
    ]
    removed = 0
    for row in doomed:
        removed += abs(contents.multiplicity(row))
        contents.discard_row(row)
        if dirtied is not None:
            dirtied.add(row)
    return removed
