"""Warehouse-side storage: the materialized view.

The warehouse stores, for each view, a duplicate-retaining materialized
relation (:class:`MaterializedView`).  Algorithms mutate it only through
``apply_delta`` (the paper's ``MV <- MV + A``), ``replace`` (RV installs a
freshly recomputed state), and ``key_delete`` (the ECA-Key local deletion
of Section 5.4).
"""

from repro.warehouse.catalog import WarehouseCatalog
from repro.warehouse.planner import CompensationPlanner
from repro.warehouse.state import MaterializedView

__all__ = ["CompensationPlanner", "MaterializedView", "WarehouseCatalog"]
