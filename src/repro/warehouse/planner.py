"""The deduplicating compensation planner behind the warehouse catalog.

Section 7 applies ECA "to each view separately", so N overlapping views
answer one update with N near-identical compensating queries.  Multi-
query optimization over maintenance expressions (Mistry et al.,
arXiv:cs/0003006) observes that the shared subexpression is the dominant
cost, and here the sharing unit is the **whole compensating query**:
within one atomic warehouse event, member requests whose queries have
equal canonical signatures (:func:`repro.relational.signature.
query_signature`) and equal routing are collapsed into a single
:class:`~repro.messaging.messages.QueryRequest`; the one answer fans
back to every subscriber.

Why whole queries, and why only within one event?  A source answers each
request against its state *at evaluation time*.  Two requests issued in
different events may be evaluated at different source states, so merging
them would hand one view an answer computed at a state its own FIFO
reasoning never admits.  Within a single atomic event the member queries
are built against the same warehouse knowledge and ship at the same
instant on the same FIFO channel, so one evaluation serves all
subscribers with the exact bag each would have received alone — that is
what keeps every view's UQS semantics byte-for-byte intact (see
``docs/MULTIVIEW.md`` for the worked example and the caveats).

The planner is **pure** bookkeeping: it never touches a channel, clock,
or randomness (lint rule RPR010), so recovery can rebuild it from its
durable route table and re-plan deterministically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.messaging.messages import QueryRequest
from repro.relational.signature import query_signature

#: One member view's request: ``(view name, destination, request)``.
MemberRequest = Tuple[str, Optional[str], QueryRequest]

#: ``(view name, that view's local query id)`` — one fan-out target.
Subscriber = Tuple[str, int]


class CompensationPlanner:
    """Groups one event's member requests into distinct shared queries.

    Parameters
    ----------
    share:
        When False (the default), every member request gets its own
        global id in encounter order — byte-identical to the historical
        1:1 multiplexer.  When True, requests with equal ``(destination,
        query signature)`` within one :meth:`plan` call share a single
        global id and wire query.
    """

    __slots__ = ("share", "_next_query_id", "_routes", "issued", "saved")

    def __init__(self, share: bool = False) -> None:
        self.share = share
        self._next_query_id = 1
        #: global query id -> ordered fan-out targets.
        self._routes: Dict[int, Tuple[Subscriber, ...]] = {}
        #: Requests actually shipped (one per distinct group).
        self.issued = 0
        #: Member requests absorbed into an already-planned group —
        #: source round trips the sharing avoided.
        self.saved = 0

    # ------------------------------------------------------------------ #
    # Planning (one call = one atomic warehouse event)
    # ------------------------------------------------------------------ #

    def plan(
        self, members: List[MemberRequest]
    ) -> List[Tuple[Optional[str], QueryRequest]]:
        """Assign global ids to one event's member requests.

        Grouping never crosses a :meth:`plan` call: requests from
        different events may be evaluated at different source states, so
        only same-event duplicates are safe to collapse.  The shipped
        request carries the first subscriber's query object; signature
        equality guarantees every subscriber's query evaluates to the
        same bag on any source state.
        """
        out: List[Tuple[Optional[str], QueryRequest]] = []
        groups: Dict[Tuple[object, ...], int] = {}
        for view_name, destination, request in members:
            if self.share:
                key = (destination, query_signature(request.query))
                shared_id = groups.get(key)
                if shared_id is not None:
                    self._routes[shared_id] += ((view_name, request.query_id),)
                    self.saved += 1
                    continue
            global_id = self._next_query_id
            self._next_query_id += 1
            self._routes[global_id] = ((view_name, request.query_id),)
            if self.share:
                groups[key] = global_id
            self.issued += 1
            out.append((destination, QueryRequest(global_id, request.query)))
        return out

    def retire(self, global_id: int) -> Tuple[Subscriber, ...]:
        """Pop and return the fan-out targets of an answered query."""
        try:
            return self._routes.pop(global_id)
        except KeyError:
            raise ProtocolError(
                f"planner received answer for unknown query {global_id}"
            ) from None

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def pending_ids(self) -> List[int]:
        """Global ids awaiting answers, ascending."""
        return sorted(self._routes)

    def subscribers(self, global_id: int) -> Tuple[Subscriber, ...]:
        """Fan-out targets of a pending query (without retiring it)."""
        return self._routes[global_id]

    def pending_count(self) -> int:
        return len(self._routes)

    def is_quiescent(self) -> bool:
        return not self._routes

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #

    def state(self) -> Dict[str, object]:
        """Codec-encodable snapshot of the route table and id counter."""
        return {
            "next_query_id": self._next_query_id,
            "routes": {
                global_id: tuple(subscribers)
                for global_id, subscribers in self._routes.items()
            },
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`state` on a fresh planner."""
        self._next_query_id = state["next_query_id"]  # type: ignore[assignment]
        self._routes = {
            global_id: tuple(
                (view_name, local_id) for view_name, local_id in subscribers
            )
            for global_id, subscribers in state["routes"].items()  # type: ignore[union-attr]
        }

    def __repr__(self) -> str:
        mode = "shared" if self.share else "independent"
        return (
            f"CompensationPlanner({mode}, pending={len(self._routes)}, "
            f"issued={self.issued}, saved={self.saved})"
        )
