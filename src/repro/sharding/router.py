"""The shard router: one actor between the outside world and the shards.

Sources and clients are completely unchanged by sharding — they keep
sending on the ``"{name}->wh"`` channels and receiving on
``"wh->{name}"``.  The router owns those warehouse-side inboxes and fans
traffic to the per-shard actors:

- an :class:`~repro.messaging.messages.UpdateNotification` is forwarded
  to every shard whose views involve the updated relation (the plan's
  interest map), on the per-``(origin, shard)`` channel — so per-source
  FIFO survives the extra hop, which is the delivery assumption every
  Section 5 correctness argument leans on;
- a :class:`~repro.messaging.messages.QueryAnswer` carries a *global*
  query id; the route table maps it back to ``(shard, local id)`` and
  the answer travels to the owning shard with its local id restored;
- a :class:`~repro.messaging.messages.RefreshRequest` fans to every
  populated shard (each shard flushes its own deferred work);
- a :class:`~repro.messaging.messages.ShardEnvelope` coming *from* a
  shard gets a fresh global id, a route-table entry, and goes out to the
  destination source as an ordinary request — the same id-multiplexing a
  :class:`~repro.warehouse.catalog.WarehouseCatalog` performs for its
  member views, lifted one level up.

Crash handling: when a shard dies, the harness's restart closure calls
:meth:`ShardRouter.invalidate_shard` *before* the recovered incarnation
re-issues its pending queries.  Answers to pre-crash global ids then die
at the router (``stale_answers_dropped``) instead of reaching a shard
that re-issued under new ids; answers the router had already translated
and forwarded are handled by the shard's own duplicate-answer dedup,
exactly as in the unsharded recovery protocol.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Observability

from repro.errors import ProtocolError, TransportClosed
from repro.messaging.messages import (
    Message,
    QueryAnswer,
    QueryRequest,
    RefreshRequest,
    ShardEnvelope,
    UpdateNotification,
)
from repro.runtime.actors import ActorMetrics, channel_label, warehouse_inbox
from repro.runtime.actors import source_inbox as _source_inbox
from repro.runtime.transport import AsyncTransport


def shard_channel(origin: str, shard: int) -> str:
    """Channel carrying ``origin``'s traffic from the router to a shard.

    One channel per (origin, shard) pair keeps per-source FIFO intact
    through the router while letting different shards drain the same
    source's stream independently.
    """
    return f"{origin}=>shard{shard}"


def router_request_channel(shard: int) -> str:
    """Channel carrying a shard's outgoing query envelopes to the router."""
    return f"shard{shard}=>rt"


class ShardRouter:
    """Fans external traffic to shards and multiplexes their queries out.

    Parameters
    ----------
    transport:
        The run's shared transport.
    interest:
        ``relation -> shard ids`` from the :class:`~repro.sharding.plan.ShardPlan`.
    shard_ids:
        Populated shards, ascending.
    source_names, client_names:
        The external actors whose ``"{name}->wh"`` inboxes this router owns.
    shard_obs:
        Optional ``shard id -> Observability`` shard views; forwarding an
        update marks it *executed* on the receiving shard's staleness
        tracker (the per-shard staleness basis).
    """

    def __init__(
        self,
        transport: AsyncTransport,
        interest: Mapping[str, Tuple[int, ...]],
        shard_ids: Sequence[int],
        source_names: Sequence[str],
        client_names: Sequence[str] = (),
        shard_obs: Optional[Mapping[int, "Observability"]] = None,
    ) -> None:
        self.transport = transport
        self.interest = dict(interest)
        self.shard_ids = tuple(shard_ids)
        self.metrics = ActorMetrics("router", "router")
        self.metrics.declare(
            "updates_routed",
            "answers_routed",
            "queries_routed",
            "refreshes_routed",
            "stale_answers_dropped",
            "updates_unroutable",
        )
        self._shard_obs = dict(shard_obs or {})
        #: global query id -> (shard, that shard's local query id).
        self._routes: Dict[int, Tuple[int, int]] = {}
        self._next_query_id = 1
        self._external = [warehouse_inbox(name) for name in source_names] + [
            warehouse_inbox(name) for name in client_names
        ]
        self._from_shards = {
            router_request_channel(shard): shard for shard in self.shard_ids
        }
        self.inboxes = tuple(self._external) + tuple(self._from_shards)

    # ------------------------------------------------------------------ #
    # The routing loop
    # ------------------------------------------------------------------ #

    async def run(self) -> None:
        while True:
            try:
                channel, message = await self.transport.recv_any(self.inboxes)
            except TransportClosed:
                return
            self.metrics.received += 1
            shard = self._from_shards.get(channel)
            if shard is not None:
                await self._route_envelope(shard, message)
            else:
                await self._route_inbound(channel_label(channel), message)
            # One routing decision per scheduling slice, like every other
            # actor, so shards interleave between router steps.
            await asyncio.sleep(0)

    async def _route_inbound(self, origin: str, message: Message) -> None:
        if isinstance(message, UpdateNotification):
            shards = self.interest.get(message.update.relation, ())
            if not shards:
                self.metrics.bump("updates_unroutable")
                return
            for shard in shards:
                obs = self._shard_obs.get(shard)
                if obs is not None:
                    obs.update_routed(message.serial)
                await self._forward(shard_channel(origin, shard), message)
            self.metrics.bump("updates_routed")
        elif isinstance(message, QueryAnswer):
            route = self._routes.pop(message.query_id, None)
            if route is None:
                # A pre-crash answer whose route was invalidated when its
                # shard recovered and re-issued under a new global id.
                self.metrics.bump("stale_answers_dropped")
                return
            shard, local_id = route
            await self._forward(
                shard_channel(origin, shard),
                QueryAnswer(local_id, message.answer),
            )
            self.metrics.bump("answers_routed")
        elif isinstance(message, RefreshRequest):
            for shard in self.shard_ids:
                await self._forward(shard_channel(origin, shard), message)
            self.metrics.bump("refreshes_routed")
        else:
            raise ProtocolError(f"router received {message!r} from {origin!r}")

    async def _route_envelope(self, shard: int, message: Message) -> None:
        if not isinstance(message, ShardEnvelope):
            raise ProtocolError(f"router received {message!r} from shard {shard}")
        global_id = self._next_query_id
        self._next_query_id += 1
        self._routes[global_id] = (shard, message.request.query_id)
        await self._forward(
            _source_inbox(message.destination),
            QueryRequest(global_id, message.request.query),
        )
        self.metrics.bump("queries_routed")

    async def _forward(self, channel: str, message: Message) -> None:
        self.metrics.sent += 1
        await self.transport.send(channel, message)

    # ------------------------------------------------------------------ #
    # Crash support
    # ------------------------------------------------------------------ #

    def invalidate_shard(self, shard: int) -> int:
        """Drop every route owned by a crashed shard; returns the count.

        Called synchronously from the restart closure, before the
        recovered shard re-issues, so a late answer to a dead global id
        can never be translated into the new incarnation's id space.
        """
        dead = [gid for gid, (owner, _) in self._routes.items() if owner == shard]
        for gid in dead:
            del self._routes[gid]
        if dead:
            self.metrics.bump("routes_invalidated", len(dead))
        return len(dead)

    @property
    def pending_routes(self) -> int:
        """Outstanding global query ids (introspection/tests)."""
        return len(self._routes)

    def __repr__(self) -> str:
        return (
            f"ShardRouter(shards={list(self.shard_ids)!r}, "
            f"routes={len(self._routes)})"
        )
