"""``repro.sharding`` — the partitioned warehouse.

One warehouse catalog, split across N shard actors behind a router:

- :mod:`repro.sharding.partition` — deterministic placement of view keys
  (hash / range / explicit), statically checked for purity by RPR007;
- :mod:`repro.sharding.plan` — the frozen per-run placement: per-shard
  catalogs plus the relation -> interested-shards map;
- :mod:`repro.sharding.router` — the :class:`ShardRouter` actor fanning
  updates, translating query ids, and absorbing stale post-crash answers;
- :mod:`repro.sharding.harness` — :func:`run_sharded`, reached through
  ``run_concurrent(..., shards=N)``.
"""

from repro.sharding.harness import ShardedWarehouse, run_sharded
from repro.sharding.partition import (
    ExplicitPartitioner,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    ViewKey,
    make_partitioner,
)
from repro.sharding.plan import ShardPlan, plan_shards
from repro.sharding.router import (
    ShardRouter,
    router_request_channel,
    shard_channel,
)

__all__ = [
    "ExplicitPartitioner",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "ShardPlan",
    "ShardRouter",
    "ShardedWarehouse",
    "ViewKey",
    "make_partitioner",
    "plan_shards",
    "router_request_channel",
    "run_sharded",
    "shard_channel",
]
