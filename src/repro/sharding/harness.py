"""``run_sharded``: the partitioned warehouse behind a shard router.

The sharded topology keeps sources and clients byte-for-byte identical to
the unsharded runtime — they talk to ``"{name}->wh"`` / ``"wh->{name}"``
channels exactly as before.  Between them and the data sits:

- one :class:`~repro.sharding.router.ShardRouter` owning the external
  warehouse inboxes, fanning updates by the plan's interest map and
  translating global query ids to per-shard local ids;
- one :class:`~repro.runtime.actors.WarehouseActor` **per populated
  shard**, each running its own per-shard
  :class:`~repro.warehouse.catalog.WarehouseCatalog`, with its own WAL
  directory (``wal_dir/shard-<i>``), its own unanswered-query set, and
  its own crash/recovery lifecycle;
- a :class:`ShardedWarehouse` facade merging the per-shard tagged views
  into one global view for clients, the trace recorder, and the
  consistency checkers.

Correctness model (see ``docs/SHARDING.md``): each member view lives on
exactly one shard and every message stream it consumes is FIFO per
``(origin, shard)`` channel, so per-view maintenance is *exactly* the
unsharded protocol — compensation, dedup, and recovery arguments carry
over shard-locally.  Global guarantees follow by composition: the merged
view is the tagged union of independently-correct member views.

Crashes are per-shard: ``crash`` applies only to ``crash_shard``, whose
supervisor rebuilds the actor from its own WAL while every other shard,
the router, sources, and clients keep running.  The restart closure
calls :meth:`ShardRouter.invalidate_shard` *before* the recovered
incarnation re-issues, so answers addressed to dead global ids die at
the router rather than leak into the new id space.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.durability.crash import CrashPolicy
from repro.durability.recovery import recover
from repro.durability.wal import WriteAheadLog
from repro.errors import SimulationError, WarehouseCrashed
from repro.kernel.dispatch import relation_owners
from repro.relational.bag import SignedBag
from repro.runtime.actors import (
    ActorMetrics,
    ClientActor,
    SourceActor,
    WarehouseActor,
    WarehouseHandle,
)
from repro.runtime.harness import (
    _MAX_POLLS,
    _normalize_sources,
    _normalize_workloads,
    _TraceRecorder,
    RuntimeResult,
    SourcesArg,
    WorkloadArg,
)
from repro.runtime.transport import (
    AsyncTransport,
    FaultPlan,
    FaultyTransport,
    InMemoryTransport,
)
from repro.serving import ReadClientActor, ServingCache, WarehouseReader, serving_report
from repro.sharding.partition import Partitioner
from repro.sharding.plan import ShardPlan, plan_shards
from repro.sharding.router import (
    ShardRouter,
    router_request_channel,
    shard_channel,
)


class ShardedWarehouse:
    """Merged facade over every shard's current incarnation.

    Plays the :class:`~repro.runtime.actors.WarehouseHandle` part for
    clients and the trace recorder: ``view_state()`` is the tagged union
    of the per-shard catalogs (each already tags rows with the member
    view's name, so the union is exactly what one unsharded catalog over
    the same views would expose), and quiescence means *every* shard is
    quiescent.
    """

    __slots__ = ("handles",)

    def __init__(self, handles: Dict[int, WarehouseHandle]) -> None:
        self.handles = dict(handles)

    def view_state(self) -> SignedBag:
        merged = SignedBag()
        for shard in sorted(self.handles):
            merged.add_bag(self.handles[shard].view_state())
        return merged

    def is_quiescent(self) -> bool:
        return all(handle.is_quiescent() for handle in self.handles.values())


def _shard_wal_dir(wal_dir: str, shard: int) -> str:
    """Per-shard WAL directory (each shard recovers independently)."""
    return os.path.join(wal_dir, f"shard-{shard}")


def run_sharded(
    sources: SourcesArg,
    algorithm: object,
    workload: WorkloadArg,
    *,
    shards: int,
    partitioner: object = "hash",
    clients: int = 0,
    client_reads: int = 4,
    faults: Optional[FaultPlan] = None,
    seed: int = 0,
    max_burst: int = 2,
    sizer: Optional[object] = None,
    wal_dir: Optional[str] = None,
    wal_fsync: bool = False,
    snapshot_every: Optional[int] = 8,
    crash: Optional[CrashPolicy] = None,
    crash_shard: int = 0,
    obs: Optional[object] = None,
    record_trace: bool = True,
    cache: Optional[ServingCache] = None,
    read_workload: Optional[Sequence[object]] = None,
    verify_reads: bool = False,
) -> RuntimeResult:
    """Run a partitioned warehouse to quiescence; returns the merged result.

    Same contract as :func:`repro.runtime.harness.run_concurrent` (which
    delegates here when ``shards`` is set) with the sharded extras:

    - ``algorithm`` must be a :class:`~repro.warehouse.catalog.WarehouseCatalog`
      or a single-view algorithm (wrapped into a one-view catalog); its
      member views are placed on shards by ``partitioner``.
    - ``wal_dir`` becomes the *parent* of one WAL directory per shard.
    - ``crash`` fires only on ``crash_shard``; the other shards keep
      serving while it recovers from its own WAL.
    - the result's ``final_view``/``trace`` carry the merged tagged view,
      ``metrics`` gains ``router`` and one ``shard<i>`` row per shard,
      and ``shard_info`` records the plan.
    - ``cache`` sits client-side of the router: one
      :class:`~repro.serving.ServingCache` shared by every shard actor's
      invalidation stream, read through the merged facade — a shard
      crash-and-recover swaps incarnations under it without losing
      invalidations (the dead incarnation pushed them before dying, and
      replayed events drain their dirty sets unsent, exactly once each).
    """
    named_sources = _normalize_sources(sources)
    owners = relation_owners(named_sources)
    workloads = _normalize_workloads(workload, named_sources, owners)
    total_updates = sum(len(w) for w in workloads.values())

    plan: ShardPlan = plan_shards(algorithm, shards, partitioner, owners)
    for catalog in plan.algorithms.values():
        catalog.bind_owners(owners)

    if crash is not None:
        if wal_dir is None:
            raise SimulationError("crash injection requires wal_dir= (recovery source)")
        if crash_shard not in plan.shard_ids:
            raise SimulationError(
                f"crash_shard={crash_shard} is not a populated shard "
                f"(populated: {list(plan.shard_ids)})"
            )

    inner = InMemoryTransport(sizer=sizer)
    transport: AsyncTransport = (
        FaultyTransport(inner, plan=faults, seed=seed + 0x5EED) if faults else inner
    )
    recorder = _TraceRecorder(named_sources, transport, record_trace=record_trace)

    shard_obs: Dict[int, object] = {}
    if obs is not None:
        if not getattr(obs, "sharded", False):
            raise SimulationError(
                "a sharded run needs Observability(sharded=True) so per-shard "
                "series carry the shard label instead of colliding"
            )
        obs.attach_clock(transport.now)
        shard_obs = {shard: obs.shard_view(shard) for shard in plan.shard_ids}

    source_names = sorted(named_sources)
    client_names = [f"client-{i}" for i in range(clients)]
    crash_run = crash.start() if crash is not None else None

    # Per-shard wiring: inboxes are the router's per-(origin, shard)
    # channels; origins/labels translate them back to the unsharded
    # vocabulary (WAL records and action-log labels stay comparable);
    # outgoing queries detour through the router for id multiplexing.
    shard_inboxes: Dict[int, List[str]] = {}
    shard_origins: Dict[int, Dict[str, Optional[str]]] = {}
    shard_labels: Dict[int, Dict[str, str]] = {}
    for shard in plan.shard_ids:
        inboxes: List[str] = []
        origins: Dict[str, Optional[str]] = {}
        labels: Dict[str, str] = {}
        for name in source_names:
            channel = shard_channel(name, shard)
            inboxes.append(channel)
            origins[channel] = name
            labels[channel] = name
        for name in client_names:
            channel = shard_channel(name, shard)
            inboxes.append(channel)
            origins[channel] = None
            labels[channel] = name
        shard_inboxes[shard] = inboxes
        shard_origins[shard] = origins
        shard_labels[shard] = labels

    wal_box: Dict[int, Optional[WriteAheadLog]] = {}
    for shard in plan.shard_ids:
        if wal_dir is None:
            wal_box[shard] = None
        else:
            wal_box[shard] = WriteAheadLog(
                _shard_wal_dir(wal_dir, shard),
                fsync=wal_fsync,
                snapshot_every=snapshot_every,
                obs=shard_obs.get(shard),
            )

    if cache is not None:
        cache.bind_obs(obs)
        if shard_obs:
            # The cache is client-side of the router, so its backend-lag
            # annotation is the worst lag across shards (a stale answer
            # may involve any of them).
            views = tuple(shard_obs.values())
            cache.attach_lag(lambda: max(view.staleness_lag() for view in views))

    handles: Dict[int, WarehouseHandle] = {}
    for shard in plan.shard_ids:
        actor = WarehouseActor(
            plan.algorithms[shard],
            transport,
            inboxes=shard_inboxes[shard],
            owners=owners,
            recorder=recorder,
            wal=wal_box[shard],
            crash_run=crash_run if shard == crash_shard else None,
            metrics=ActorMetrics(f"shard{shard}", "shard", shard=str(shard)),
            obs=shard_obs.get(shard),
            channel_origins=shard_origins[shard],
            channel_labels=shard_labels[shard],
            request_channel=router_request_channel(shard),
            cache=cache,
        )
        handles[shard] = WarehouseHandle(actor)
        if wal_box[shard] is not None:
            # Genesis snapshot per shard: recovery is possible before the
            # first automatic snapshot cadence fires.
            wal_box[shard].snapshot(plan.algorithms[shard])

    merged = ShardedWarehouse(handles)
    recorder.record_initial(merged)

    router = ShardRouter(
        transport,
        plan.interest,
        plan.shard_ids,
        source_names=source_names,
        client_names=client_names,
        shard_obs=shard_obs or None,
    )

    source_actors = [
        SourceActor(
            name,
            named_sources[name],
            transport,
            workloads[name],
            recorder,
            seed=seed + 1 + index,
            max_burst=max_burst,
            obs=obs,
        )
        for index, name in enumerate(source_names)
    ]
    client_actors = [
        ClientActor(
            name,
            transport,
            merged,
            recorder,
            reads=client_reads,
            seed=seed + 101 + i,
            obs=obs,
        )
        for i, name in enumerate(client_names)
    ]
    reader_actors: List[ReadClientActor] = []
    reader: Optional[WarehouseReader] = None
    if read_workload is not None:
        # Every shard's catalog tags rows with the member view name, so
        # the merged facade serves a tagged union: one reader over it
        # covers every view, wherever it lives.
        key_positions: Dict[str, object] = {}
        for catalog in plan.algorithms.values():
            for view_name, member in catalog.algorithms.items():
                key_positions[view_name] = member.view.serving_key_positions()
        reader = WarehouseReader(merged.view_state, key_positions, tagged=True)
        reader_actors.append(
            ReadClientActor(
                "reader-0",
                cache,
                reader,
                read_workload,
                verify=verify_reads,
                metrics=ActorMetrics("reader-0", "reader"),
            )
        )

    crashes: List[Dict[str, object]] = []
    wal_totals = {"records": 0, "snapshots": 0}

    def _make_restart(shard: int) -> Callable[[WarehouseCrashed], None]:
        shard_dir = _shard_wal_dir(wal_dir, shard)

        def _restart(fault: WarehouseCrashed) -> None:
            """Rebuild one dead shard from its own WAL; others keep running."""
            handle = handles[shard]
            old = handle.actor
            recorder.record_crash(
                f"shard {shard} crashed at event {fault.event_index} "
                f"(mode={fault.mode}, drop_sends={fault.drop_sends})"
            )
            dead_wal = wal_box[shard]
            wal_totals["records"] += dead_wal.appended
            wal_totals["snapshots"] += dead_wal.snapshots_taken
            dead_wal.close()
            view = shard_obs.get(shard)
            if view is not None:
                view.crash(fault.event_index, fault.mode, fault.drop_sends)
            # Invalidate BEFORE the new incarnation re-issues: any answer
            # still addressed to a pre-crash global id must die at the
            # router, never be translated into the new id space.
            invalidated = router.invalidate_shard(shard)
            recovered = recover(shard_dir, obs=view)
            recovered.algorithm.bind_owners(owners)
            new_wal = WriteAheadLog(
                shard_dir,
                fsync=wal_fsync,
                snapshot_every=snapshot_every,
                obs=view,
            )
            # Fold the replayed suffix into a fresh snapshot so a second
            # crash recovers from here, not from before the first one.
            new_wal.snapshot(recovered.algorithm)
            wal_box[shard] = new_wal
            old.metrics.bump("crashes")
            handle.actor = WarehouseActor(
                recovered.algorithm,
                transport,
                inboxes=shard_inboxes[shard],
                owners=owners,
                recorder=recorder,
                wal=new_wal,
                crash_run=crash_run if shard == crash_shard else None,
                reissue=recovered.reissue,
                metrics=old.metrics,
                event_index=fault.event_index,
                obs=view,
                channel_origins=shard_origins[shard],
                channel_labels=shard_labels[shard],
                request_channel=router_request_channel(shard),
                cache=cache,
            )
            plan.algorithms[shard] = recovered.algorithm
            crashes.append(
                {
                    "shard": shard,
                    "event_index": fault.event_index,
                    "mode": fault.mode,
                    "drop_sends": fault.drop_sends,
                    "snapshot_lsn": recovered.snapshot_lsn,
                    "replayed": recovered.replayed,
                    "reissued": len(recovered.reissue),
                    "routes_invalidated": invalidated,
                    "virtual_time": transport.now(),
                }
            )
            recorder.record_recovery(
                f"shard {shard} recovered from snapshot lsn "
                f"{recovered.snapshot_lsn} + {recovered.replayed} replayed "
                f"record(s), {len(recovered.reissue)} re-issued query(ies), "
                f"{invalidated} router route(s) invalidated"
            )

        return _restart

    restarts: Dict[int, Callable[[WarehouseCrashed], None]] = {}
    if crash_run is not None:
        restarts[crash_shard] = _make_restart(crash_shard)

    started = time.perf_counter()
    asyncio.run(
        _drive_sharded(
            transport,
            router,
            merged,
            handles,
            source_actors,
            client_actors,
            restarts,
            reader_actors=reader_actors,
        )
    )
    wall_seconds = time.perf_counter() - started

    wal_stats = None
    if wal_dir is not None:
        last_lsn = 0
        for shard in plan.shard_ids:
            final_wal = wal_box[shard]
            wal_totals["records"] += final_wal.appended
            wal_totals["snapshots"] += final_wal.snapshots_taken
            last_lsn = max(last_lsn, final_wal.last_lsn)
            final_wal.close()
        wal_stats = {
            "records": wal_totals["records"],
            "snapshots": wal_totals["snapshots"],
            "last_lsn": last_lsn,
        }

    if not merged.is_quiescent():
        laggards = sorted(
            shard for shard, handle in handles.items() if not handle.is_quiescent()
        )
        raise SimulationError(
            f"shard(s) {laggards} failed to quiesce after the workload drained"
        )
    if router.pending_routes:
        raise SimulationError(
            f"router still holds {router.pending_routes} live route(s) at "
            f"quiescence — a query answer was lost"
        )

    metrics = {actor.metrics.name: actor.metrics for actor in source_actors}
    metrics["router"] = router.metrics
    for shard in plan.shard_ids:
        metrics[f"shard{shard}"] = handles[shard].metrics
    for client in client_actors:
        metrics[client.name] = client.metrics
    for reader_actor in reader_actors:
        metrics[reader_actor.name] = reader_actor.metrics

    serving = serving_report(cache, reader)

    partitioner_kind = (
        partitioner.kind if isinstance(partitioner, Partitioner) else str(partitioner)
    )
    result = RuntimeResult(
        trace=recorder.trace,
        metrics=metrics,
        channel_stats=transport.stats(),
        updates=total_updates,
        quiesce_latency=max(0.0, transport.now() - recorder.last_update_at),
        virtual_duration=transport.now(),
        wall_seconds=wall_seconds,
        observations={c.name: c.observations for c in client_actors},
        final_view=merged.view_state(),
        crashes=crashes,
        wal_stats=wal_stats,
        action_log=recorder.action_log,
        per_source_states=recorder.per_source_states,
        shard_info={
            "shards": plan.shards,
            "partitioner": partitioner_kind,
            "assignment": dict(plan.assignment),
            "shard_ids": plan.shard_ids,
            "algorithms": dict(plan.algorithms),
        },
        serving=serving,
        read_results={r.name: r.results for r in reader_actors},
        read_mismatches=[m for r in reader_actors for m in r.mismatches],
    )
    if obs is not None:
        obs.finalize(result)
    return result


async def _drive_sharded(
    transport: AsyncTransport,
    router: ShardRouter,
    merged: ShardedWarehouse,
    handles: Dict[int, WarehouseHandle],
    source_actors: Sequence[SourceActor],
    client_actors: Sequence[ClientActor],
    restarts: Dict[int, Callable[[WarehouseCrashed], None]],
    reader_actors: Sequence[ReadClientActor] = (),
) -> None:
    source_tasks = [asyncio.ensure_future(actor.run()) for actor in source_actors]
    router_task = asyncio.ensure_future(router.run())

    async def _supervise(shard: int) -> None:
        # One iteration per incarnation of this shard, mirroring the
        # unsharded supervisor — but scoped to a single shard, so the
        # rest of the fleet never stops serving.
        while True:
            try:
                await handles[shard].actor.run()
                return
            except WarehouseCrashed as fault:
                restart = restarts.get(shard)
                if restart is None:
                    raise
                restart(fault)

    shard_tasks = [asyncio.ensure_future(_supervise(shard)) for shard in sorted(handles)]
    client_tasks = [asyncio.ensure_future(actor.run()) for actor in client_actors]
    client_tasks += [asyncio.ensure_future(actor.run()) for actor in reader_actors]

    try:
        if client_tasks:
            await asyncio.gather(*client_tasks)
        # Global quiescence: every workload drained, every channel (source,
        # router, and shard legs alike) empty, every shard holding no
        # deferred work.  The router is stateless between messages apart
        # from its route table, which empties exactly when the shards'
        # unanswered-query sets do.
        for _ in range(_MAX_POLLS):
            await asyncio.sleep(0)
            if (
                router_task.done()
                or any(task.done() for task in shard_tasks)
                or any(task.done() for task in source_tasks)
            ):
                break  # an actor died early; surface its exception below
            if (
                all(actor.workload_done for actor in source_actors)
                and transport.total_pending() == 0
                and merged.is_quiescent()
            ):
                break
        else:
            raise SimulationError(
                f"sharded runtime did not quiesce within {_MAX_POLLS} polls "
                f"(pending={transport.total_pending()})"
            )
    finally:
        transport.close()
        outcome = await asyncio.gather(
            *source_tasks,
            router_task,
            *shard_tasks,
            *client_tasks,
            return_exceptions=True,
        )
        for result in outcome:
            if isinstance(result, Exception) and not isinstance(
                result, asyncio.CancelledError
            ):
                raise result
