"""Partitioners: deterministic placement of views onto shards.

A partitioner maps a *view key* — the tuple identifying one member view
of the warehouse, ``(view_name,)`` today — to the shard that owns it.
The router consults the resulting assignment once, at plan time; after
that every update and answer is routed by the plan, never by re-hashing,
so a partitioner only has to be a **deterministic pure function of the
key**.  That property is load-bearing: recovery re-plans from the same
catalog and must land every view on the same shard, and the conformance
suite replays merged shard logs against a single-shard baseline that
assumes stable ownership.  RPR007 (``repro.analysis``) enforces purity
statically — no wall clock, no randomness, no builtin ``hash()`` (salted
per process), no mutable captured state.

Three families:

- :class:`HashPartitioner` — CRC-32 of the key's canonical encoding,
  modulo the shard count.  Stable across processes and Python versions.
- :class:`RangePartitioner` — sorted boundary keys split the key space
  into contiguous ranges (shard ``i`` holds keys in
  ``[boundary[i-1], boundary[i])``), the classic ordered layout.
- :class:`ExplicitPartitioner` — a literal ``key -> shard`` table, for
  tests and benchmarks that need a precise placement.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError

#: A view key: the tuple a partitioner places (today ``(view_name,)``).
ViewKey = Tuple[object, ...]


def _encode_key(key: ViewKey) -> bytes:
    """Canonical byte encoding of a key (stable across processes).

    ``repr`` of a tuple of strings/numbers is deterministic, unlike the
    builtin ``hash`` which is salted per interpreter start.
    """
    return repr(tuple(key)).encode("utf-8")


class Partitioner:
    """Base class: ``shard_of(key)`` places one view key on one shard."""

    #: Registry-style spec name (overridden by subclasses).
    kind = "abstract"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise SimulationError(f"a partitioner needs >= 1 shard, got {shards}")
        self.shards = shards

    def shard_of(self, key: ViewKey) -> int:
        """The shard owning ``key`` — in ``range(self.shards)``, always."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shards={self.shards})"


class HashPartitioner(Partitioner):
    """CRC-32 of the canonical key encoding, modulo the shard count.

    CRC-32 rather than ``hash()``: Python salts string hashing per
    process, which would scatter the same catalog differently on every
    run — exactly the instability RPR007 exists to catch.
    """

    kind = "hash"

    def shard_of(self, key: ViewKey) -> int:
        return zlib.crc32(_encode_key(key)) % self.shards


class RangePartitioner(Partitioner):
    """Contiguous key ranges split by sorted boundary keys.

    ``boundaries`` holds ``shards - 1`` strictly increasing keys; a key
    lands on the number of boundaries at or below it, so shard 0 holds
    everything before ``boundaries[0]`` and the last shard everything
    from ``boundaries[-1]`` on.
    """

    kind = "range"

    def __init__(self, boundaries: Sequence[ViewKey]) -> None:
        super().__init__(len(boundaries) + 1)
        ordered = [tuple(boundary) for boundary in boundaries]
        if any(a >= b for a, b in zip(ordered, ordered[1:])):
            raise SimulationError(
                f"range boundaries must be strictly increasing: {ordered!r}"
            )
        self.boundaries: Tuple[ViewKey, ...] = tuple(ordered)

    def shard_of(self, key: ViewKey) -> int:
        return bisect_right(self.boundaries, tuple(key))

    def __repr__(self) -> str:
        return f"RangePartitioner(boundaries={list(self.boundaries)!r})"


class ExplicitPartitioner(Partitioner):
    """A literal assignment table (tests, benchmarks, migrations).

    Unknown keys are rejected rather than defaulted: an explicit layout
    that silently hashes strays would defeat its purpose.
    """

    kind = "explicit"

    def __init__(
        self, assignment: Mapping[ViewKey, int], shards: Optional[int] = None
    ) -> None:
        table: Dict[ViewKey, int] = {
            tuple(key): shard for key, shard in assignment.items()
        }
        if not table:
            raise SimulationError("an explicit partitioner needs >= 1 assignment")
        inferred = max(table.values()) + 1
        super().__init__(shards if shards is not None else inferred)
        for key, shard in table.items():
            if not 0 <= shard < self.shards:
                raise SimulationError(
                    f"assignment {key!r} -> {shard} outside range({self.shards})"
                )
        self.assignment = table

    def shard_of(self, key: ViewKey) -> int:
        try:
            return self.assignment[tuple(key)]
        except KeyError:
            raise SimulationError(
                f"explicit partitioner has no assignment for key {tuple(key)!r}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"ExplicitPartitioner({len(self.assignment)} key(s), "
            f"shards={self.shards})"
        )


def make_partitioner(
    spec: object, shards: int, keys: Sequence[ViewKey] = ()
) -> Partitioner:
    """Resolve a CLI/harness partitioner spec to an instance.

    ``spec`` may already be a :class:`Partitioner` (returned as-is after
    a shard-count check), or one of the names ``"hash"`` / ``"range"``.
    A range layout needs boundary keys; they are derived by splitting the
    sorted ``keys`` universe into ``shards`` near-equal runs, which is
    what a static range assignment over a known catalog means.
    """
    if isinstance(spec, Partitioner):
        if spec.shards != shards:
            raise SimulationError(
                f"partitioner covers {spec.shards} shard(s), run wants {shards}"
            )
        return spec
    if spec == "hash":
        return HashPartitioner(shards)
    if spec == "range":
        if shards == 1:
            return RangePartitioner(())
        ordered = sorted(tuple(key) for key in keys)
        if len(ordered) < shards:
            raise SimulationError(
                f"range partitioning {len(ordered)} view(s) over {shards} "
                f"shards needs at least one view per shard"
            )
        step = len(ordered) / shards
        boundaries = [ordered[int(round(step * i))] for i in range(1, shards)]
        return RangePartitioner(boundaries)
    raise SimulationError(
        f"unknown partitioner spec {spec!r} (expected 'hash', 'range', or a "
        f"Partitioner instance)"
    )
