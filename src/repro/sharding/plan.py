"""Shard planning: from one warehouse algorithm to N per-shard catalogs.

The unit of placement is the **member view**: a
:class:`~repro.warehouse.catalog.WarehouseCatalog` is split so each shard
runs its own smaller catalog over the views the partitioner assigned to
it, and a bare single-view algorithm is wrapped in a one-view catalog
first (so every shard presents the same tagged-union ``view_state``
shape and the merged global view is always ``(view_name, *row)`` rows).

Alongside the assignment the plan precomputes the **interest map** —
``relation -> shards whose views read it`` — which is everything the
router needs to fan an update notification out: a shard with no view
over the updated relation would process the notification as a no-op
event, and skipping it keeps per-shard work proportional to per-shard
data, which is the entire point of partitioning.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.core.protocol import WarehouseAlgorithm
from repro.errors import SimulationError
from repro.sharding.partition import Partitioner, ViewKey, make_partitioner
from repro.warehouse.catalog import WarehouseCatalog


class ShardPlan:
    """One run's placement decisions, frozen before any actor starts.

    Attributes
    ----------
    shards:
        Total shard count requested (empty shards get no actor).
    assignment:
        ``view name -> shard id`` for every member view.
    algorithms:
        ``shard id -> per-shard catalog``, populated shards only.
    interest:
        ``relation -> ascending shard ids`` whose views involve it.
    """

    __slots__ = ("shards", "assignment", "algorithms", "interest")

    def __init__(
        self,
        shards: int,
        assignment: Dict[str, int],
        algorithms: Dict[int, WarehouseCatalog],
        interest: Dict[str, Tuple[int, ...]],
    ) -> None:
        self.shards = shards
        self.assignment = assignment
        self.algorithms = algorithms
        self.interest = interest

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        """Populated shards, ascending."""
        return tuple(sorted(self.algorithms))

    def __repr__(self) -> str:
        return (
            f"ShardPlan(shards={self.shards}, views={len(self.assignment)}, "
            f"populated={list(self.shard_ids)!r})"
        )


def _member_views(algorithm: object) -> Dict[str, WarehouseAlgorithm]:
    """The placeable members of ``algorithm`` (catalog members, or itself)."""
    if isinstance(algorithm, WarehouseCatalog):
        return dict(algorithm.algorithms)
    if isinstance(algorithm, WarehouseAlgorithm):
        if getattr(algorithm, "multi_source", False):
            raise SimulationError(
                f"algorithm {algorithm.name!r} maintains one view spanning "
                f"several sources; sharding places whole views, so a "
                f"spanning view cannot be partitioned — run it unsharded"
            )
        return {algorithm.view.name: algorithm}
    raise SimulationError(
        f"cannot shard {algorithm!r}: expected a WarehouseCatalog or a "
        f"single-view WarehouseAlgorithm"
    )


def plan_shards(
    algorithm: object,
    shards: int,
    partitioner: object,
    owners: Mapping[str, str],
) -> ShardPlan:
    """Split ``algorithm`` into per-shard catalogs under ``partitioner``.

    ``partitioner`` is a :class:`~repro.sharding.partition.Partitioner`
    or a spec name (``"hash"`` / ``"range"``) resolved against the view
    keys.  ``owners`` (relation -> source) bounds the interest map: every
    owned relation gets an entry, so the router can distinguish "no shard
    cares" (an explicit empty tuple) from a typo'd relation name.
    """
    if shards < 1:
        raise SimulationError(f"a sharded run needs >= 1 shard, got {shards}")
    members = _member_views(algorithm)
    keys: List[ViewKey] = [(name,) for name in sorted(members)]
    chosen = make_partitioner(partitioner, shards, keys)

    assignment: Dict[str, int] = {}
    per_shard: Dict[int, Dict[str, WarehouseAlgorithm]] = {}
    for name in sorted(members):
        shard = chosen.shard_of((name,))
        if not 0 <= shard < shards:
            raise SimulationError(
                f"partitioner placed view {name!r} on shard {shard}, "
                f"outside range({shards})"
            )
        assignment[name] = shard
        per_shard.setdefault(shard, {})[name] = members[name]

    # The planner is scoped per shard: each per-shard catalog inherits the
    # source catalog's sharing mode and dedupes only among its own views
    # (cross-shard sharing would need answer fan-out across actors).
    share = getattr(algorithm, "share_compensation", False)
    algorithms = {
        shard: WarehouseCatalog(views, share_compensation=share)
        for shard, views in per_shard.items()
    }
    # Invert view -> relations rather than probing every (relation, view)
    # pair with ``involves``: a view reacts to each of its schemas' alias
    # and base names (see View.involves), so one pass over the members
    # covers the whole map in O(views x relations-per-view).
    reactive: Dict[str, set] = {}
    for name, member in members.items():
        for schema in member.view.relations:
            reactive.setdefault(schema.name, set()).add(assignment[name])
            reactive.setdefault(schema.base, set()).add(assignment[name])
    interest: Dict[str, Tuple[int, ...]] = {
        relation: tuple(sorted(reactive.get(relation, ())))
        for relation in owners
    }
    return ShardPlan(shards, assignment, algorithms, interest)
