"""Deterministic process-fault injection: when to kill the warehouse.

PR 1's ``FaultyTransport`` perturbs *messages*; a :class:`CrashPolicy`
perturbs the *process*.  The harness consults the policy after every
atomic warehouse event (message received → logged → dispatched → requests
routed) and, when it fires, raises
:class:`~repro.errors.WarehouseCrashed` out of the warehouse actor.  The
actor's memory is gone; only the WAL directory survives, and the harness
rebuilds the warehouse from it while sources and clients keep running.

Crash points are chosen as a pure function of the policy's parameters
and the event stream — no randomness at decision time — so the same seed
reproduces the identical crash point, recovery, and trace.

Modes:

- ``"mid-uqs"`` — fire at an event boundary where queries are in flight
  (the UQS is non-empty): the state ECA's strong-consistency argument
  depends on is exactly what must survive.
- ``"after-answer"`` — fire right after an answer was absorbed while
  more queries remain pending: between the answer and the install, the
  COLLECT buffer holds uninstalled deltas.
- ``"event"`` — fire at a fixed global event index (``at=``), for
  pinning an exact boundary in tests.

``drop_sends=True`` models a crash *before* the event's outgoing
requests reached the transport (they are suppressed, then the crash
fires).  The WAL logged the received message, so replay reconstructs the
UQS and recovery re-issues the never-sent queries — the scenario that
distinguishes logging-before-send from logging-after.
"""

from __future__ import annotations

from typing import Optional

from repro.simulation.trace import W_ANS

MODES = ("mid-uqs", "after-answer", "event")


class CrashPolicy:
    """Immutable description of when the warehouse should die.

    The default modes aim at the boundaries where Section 5.2's
    in-flight state (the UQS, the COLLECT buffer — what Appendix B's
    consistency proof depends on) is non-trivial, so surviving them is
    the strongest durability evidence a run can produce.

    Parameters
    ----------
    mode:
        One of :data:`MODES` (see module docstring).
    at:
        For ``mode="event"``: the 1-based global warehouse event index
        to crash after.
    skip:
        For the eligibility modes: how many eligible boundaries to let
        pass before firing.  ``None`` derives a small skip from ``seed``
        so different seeds crash at different (but reproducible) points.
    max_crashes:
        Total crashes over one run; after each crash the skip counter
        restarts, so crash *n+1* happens ``skip`` eligible boundaries
        after recovery *n*.
    drop_sends:
        Suppress the crashing event's outgoing requests first (crash
        before send).
    seed:
        Only used to derive ``skip`` when it is ``None``.
    """

    __slots__ = ("mode", "at", "skip", "max_crashes", "drop_sends", "seed")

    def __init__(
        self,
        mode: str = "mid-uqs",
        at: Optional[int] = None,
        skip: Optional[int] = None,
        max_crashes: int = 1,
        drop_sends: bool = False,
        seed: int = 0,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown crash mode {mode!r}; expected one of {MODES}")
        if mode == "event" and at is None:
            raise ValueError('mode="event" requires at=<event index>')
        if skip is not None and skip < 0:
            raise ValueError(f"skip must be >= 0, got {skip}")
        if max_crashes < 1:
            raise ValueError(f"max_crashes must be >= 1, got {max_crashes}")
        self.mode = mode
        self.at = at
        self.skip = skip
        self.max_crashes = max_crashes
        self.drop_sends = drop_sends
        self.seed = seed

    def start(self) -> "CrashRun":
        """Fresh mutable per-run state (one per ``run_concurrent`` call)."""
        return CrashRun(self)

    def __repr__(self) -> str:
        return (
            f"CrashPolicy(mode={self.mode!r}, at={self.at}, skip={self.skip}, "
            f"max_crashes={self.max_crashes}, drop_sends={self.drop_sends}, "
            f"seed={self.seed})"
        )


class CrashRun:
    """Decision state threaded through one run (and its restarts)."""

    __slots__ = ("policy", "crashes", "_eligible", "_skip")

    def __init__(self, policy: CrashPolicy) -> None:
        self.policy = policy
        self.crashes = 0
        self._eligible = 0
        # A pure function of the seed: small enough to fire on short
        # paper workloads, varied enough that seeds pick different points.
        self._skip = policy.skip if policy.skip is not None else policy.seed % 3

    def decide(self, event_index: int, kind: str, pending: int) -> bool:
        """Should the warehouse die after this event?

        ``event_index`` counts warehouse events across the whole run
        (surviving restarts), ``kind`` is the trace event kind just
        recorded, ``pending`` is ``len(pending_query_ids())`` after the
        event.
        """
        policy = self.policy
        if self.crashes >= policy.max_crashes:
            return False
        if policy.mode == "event":
            fire = event_index == policy.at
        elif policy.mode == "mid-uqs":
            fire = pending > 0 and self._consume()
        else:  # after-answer
            fire = kind == W_ANS and pending > 0 and self._consume()
        if fire:
            self.crashes += 1
            self._eligible = 0
        return fire

    def _consume(self) -> bool:
        if self._eligible < self._skip:
            self._eligible += 1
            return False
        return True
