"""Durability for the warehouse: codec + WAL + snapshots + recovery.

The paper's warehouse carries critical in-flight state — the unanswered
query set and COLLECT buffer that make ECA strongly consistent (Sections
5.2, Appendix B) — all of it, until this package, in process memory.
``repro.durability`` persists every warehouse-side event to an
append-only CRC-checked log with periodic compacting snapshots, and
rebuilds a live algorithm (view contents *and* pending protocol state)
by snapshot + replay.  :class:`CrashPolicy` plugs into the concurrent
runtime to kill and restart the warehouse at deterministic points,
proving the Section 3.1 guarantees survive process faults.
"""

from repro.durability.codec import (
    CODEC_VERSION,
    canonical_json,
    decode_algorithm,
    decode_value,
    dumps,
    dumps_algorithm,
    encode_algorithm,
    encode_value,
    loads,
    loads_algorithm,
)
from repro.durability.crash import CrashPolicy, CrashRun
from repro.durability.recovery import RecoveryResult, recover
from repro.durability.wal import (
    EVENT,
    RECV,
    SEND,
    WriteAheadLog,
    read_latest_snapshot,
    read_records,
)

__all__ = [
    "CODEC_VERSION",
    "CrashPolicy",
    "CrashRun",
    "EVENT",
    "RECV",
    "RecoveryResult",
    "SEND",
    "WriteAheadLog",
    "canonical_json",
    "decode_algorithm",
    "decode_value",
    "dumps",
    "dumps_algorithm",
    "encode_algorithm",
    "encode_value",
    "loads",
    "loads_algorithm",
    "read_latest_snapshot",
    "read_records",
    "recover",
]
