"""Canonical, versioned JSON codec for warehouse state.

Everything the warehouse must survive a crash with — messages, queries,
materialized views, each algorithm's pending protocol state — encodes to
a *tagged* JSON form: every non-primitive value is an object whose ``$``
key names its type.  Plain JSON lists mean Python lists; tuples, dicts
with non-string keys, bags, and every domain object get explicit tags, so
decoding is unambiguous and round-trips are exact (including the strict
``int`` signs :func:`repro.relational.tuples.check_sign` demands).

Canonical form matters: :func:`canonical_json` sorts object keys and
strips whitespace, and :meth:`SignedBag.to_pairs` orders bag contents, so
*equal states produce byte-identical encodings*.  The WAL's CRCs, the
recovery tests' byte-identity property, and snapshot comparison all lean
on this.

The envelope produced by :func:`dumps` carries :data:`CODEC_VERSION`;
:func:`loads` refuses payloads from a different version rather than
guessing at their layout.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable, Dict, List, cast

from repro.errors import CodecError
from repro.messaging.messages import (
    Message,
    QueryAnswer,
    QueryRequest,
    RefreshRequest,
    UpdateBatch,
    UpdateNotification,
)
from repro.relational.bag import SignedBag
from repro.relational.conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    Not,
    Operand,
    Or,
    TrueCondition,
)
from repro.relational.expressions import BoundOperand, Query, RelationOperand, Term
from repro.relational.schema import RelationSchema
from repro.relational.tuples import SignedTuple
from repro.relational.views import View
from repro.source.updates import Update
from repro.warehouse.state import MaterializedView

if TYPE_CHECKING:
    from repro.core.protocol import WarehouseAlgorithm
    from repro.warehouse.catalog import WarehouseCatalog

#: Bumped whenever the encoded layout changes incompatibly.  v2: the
#: routed-protocol unification folded the ``algo.multi`` envelope into
#: the generic ``algo`` form (owners travel in ``config``).  v3: the
#: ``algo.catalog`` envelope carries the shared-compensation planner —
#: a ``share`` flag plus routes whose values are subscriber *lists*
#: (one shared query may fan out to several member views).
CODEC_VERSION = 3

_PRIMITIVES = (str, int, float, bool, type(None))


def canonical_json(payload: object) -> str:
    """Serialize already-encoded JSON data to its canonical byte form."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


# --------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------- #


def encode_value(value: object) -> object:
    """Encode any supported value to tagged JSON data."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, float)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, tuple):
        return {"$": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {
            "$": "dict",
            "items": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    if isinstance(value, SignedBag):
        return {
            "$": "bag",
            "pairs": [
                [encode_value(row), count] for row, count in value.to_pairs()
            ],
        }
    if isinstance(value, SignedTuple):
        return {
            "$": "stuple",
            "values": [encode_value(v) for v in value.values],
            "sign": value.sign,
        }
    if isinstance(value, Update):
        return {
            "$": "update",
            "kind": value.kind,
            "relation": value.relation,
            "values": [encode_value(v) for v in value.values],
        }
    if isinstance(value, RelationSchema):
        return {
            "$": "schema",
            "name": value.name,
            "attributes": list(value.attributes),
            "key": list(value.key) if value.key is not None else None,
            "base": value.base,
        }
    if isinstance(value, RelationOperand):
        return {"$": "rel", "schema": encode_value(value.schema)}
    if isinstance(value, BoundOperand):
        return {
            "$": "bound",
            "schema": encode_value(value.schema),
            "tuple": encode_value(value.tuple),
        }
    if isinstance(value, Condition):
        return _encode_condition(value)
    if isinstance(value, (Attr, Const)):
        return _encode_operand(value)
    if isinstance(value, Term):
        return {
            "$": "term",
            "operands": [encode_value(op) for op in value.operands],
            "projection": list(value.projection),
            "condition": _encode_condition(value.condition),
            "coefficient": value.coefficient,
        }
    if isinstance(value, Query):
        return {"$": "query", "terms": [encode_value(t) for t in value.terms]}
    if isinstance(value, View):
        return {
            "$": "view",
            "name": value.name,
            "relations": [encode_value(s) for s in value.relations],
            "projection": list(value.projection),
            "condition": _encode_condition(value.condition),
        }
    if isinstance(value, MaterializedView):
        return {
            "$": "mv",
            "view": encode_value(value.view),
            "contents": [
                [encode_value(row), count] for row, count in value.contents_pairs()
            ],
        }
    if isinstance(value, Message):
        return _encode_message(value)
    raise CodecError(f"cannot encode value of type {type(value).__name__}: {value!r}")


def _encode_condition(condition: Condition) -> Dict[str, object]:
    if isinstance(condition, TrueCondition):
        return {"$": "true"}
    if isinstance(condition, Comparison):
        return {
            "$": "cmp",
            "left": _encode_operand(condition.left),
            "op": condition.op,
            "right": _encode_operand(condition.right),
        }
    if isinstance(condition, And):
        return {"$": "and", "parts": [_encode_condition(p) for p in condition.parts]}
    if isinstance(condition, Or):
        return {"$": "or", "parts": [_encode_condition(p) for p in condition.parts]}
    if isinstance(condition, Not):
        return {"$": "not", "part": _encode_condition(condition.part)}
    raise CodecError(f"cannot encode condition {condition!r}")


def _encode_operand(operand: Operand) -> Dict[str, object]:
    if isinstance(operand, Attr):
        return {"$": "attr", "name": operand.name}
    if isinstance(operand, Const):
        return {"$": "const", "value": encode_value(operand.value)}
    raise CodecError(f"cannot encode comparison operand {operand!r}")


def _encode_message(message: Message) -> Dict[str, object]:
    if isinstance(message, UpdateNotification):
        return {
            "$": "msg.update",
            "update": encode_value(message.update),
            "serial": message.serial,
        }
    if isinstance(message, QueryRequest):
        return {
            "$": "msg.query",
            "id": message.query_id,
            "query": encode_value(message.query),
        }
    if isinstance(message, QueryAnswer):
        return {
            "$": "msg.answer",
            "id": message.query_id,
            "answer": encode_value(message.answer),
        }
    if isinstance(message, RefreshRequest):
        return {"$": "msg.refresh", "serial": message.serial}
    if isinstance(message, UpdateBatch):
        return {
            "$": "msg.batch",
            "notifications": [
                _encode_message(n) for n in message.notifications
            ],
        }
    raise CodecError(f"cannot encode message {message!r}")


# --------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------- #


def decode_value(data: object) -> object:
    """Decode tagged JSON data back to live objects."""
    if isinstance(data, _PRIMITIVES):
        return data
    if isinstance(data, list):
        return [decode_value(v) for v in data]
    if not isinstance(data, dict):
        raise CodecError(f"cannot decode JSON value {data!r}")
    tag = data.get("$")
    try:
        decoder = _DECODERS[tag]
    except KeyError:
        raise CodecError(f"unknown codec tag {tag!r}") from None
    try:
        return decoder(data)
    except CodecError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise CodecError(f"malformed {tag!r} payload: {exc}") from exc


def _decode_pairs(pairs: List[Any]) -> SignedBag:
    return SignedBag.from_pairs(
        [(decode_value(row), count) for row, count in pairs]
    )


_DECODERS: Dict[str, Callable[[Dict[str, Any]], object]] = {
    "tuple": lambda d: tuple(decode_value(v) for v in d["items"]),
    "dict": lambda d: {decode_value(k): decode_value(v) for k, v in d["items"]},
    "bag": lambda d: _decode_pairs(d["pairs"]),
    "stuple": lambda d: SignedTuple(
        [decode_value(v) for v in d["values"]], d["sign"]
    ),
    "update": lambda d: Update(
        d["kind"], d["relation"], [decode_value(v) for v in d["values"]]
    ),
    "schema": lambda d: RelationSchema(
        d["name"], d["attributes"], key=d["key"], base=d["base"]
    ),
    "rel": lambda d: RelationOperand(decode_value(d["schema"])),
    "bound": lambda d: BoundOperand(
        decode_value(d["schema"]), decode_value(d["tuple"])
    ),
    "true": lambda d: TrueCondition(),
    "cmp": lambda d: Comparison(
        decode_value(d["left"]), d["op"], decode_value(d["right"])
    ),
    "and": lambda d: And(*[decode_value(p) for p in d["parts"]]),
    "or": lambda d: Or(*[decode_value(p) for p in d["parts"]]),
    "not": lambda d: Not(decode_value(d["part"])),
    "attr": lambda d: Attr(d["name"]),
    "const": lambda d: Const(decode_value(d["value"])),
    "term": lambda d: Term(
        [decode_value(op) for op in d["operands"]],
        d["projection"],
        decode_value(d["condition"]),
        d["coefficient"],
    ),
    "query": lambda d: Query([decode_value(t) for t in d["terms"]]),
    "view": lambda d: View(
        d["name"],
        [decode_value(s) for s in d["relations"]],
        d["projection"],
        decode_value(d["condition"]),
    ),
    "mv": lambda d: MaterializedView(
        decode_value(d["view"]), _decode_pairs(d["contents"])
    ),
    "msg.update": lambda d: UpdateNotification(
        decode_value(d["update"]), d["serial"]
    ),
    "msg.query": lambda d: QueryRequest(d["id"], decode_value(d["query"])),
    "msg.answer": lambda d: QueryAnswer(d["id"], decode_value(d["answer"])),
    "msg.refresh": lambda d: RefreshRequest(d["serial"]),
    "msg.batch": lambda d: UpdateBatch(
        tuple(
            cast(UpdateNotification, decode_value(n))
            for n in d["notifications"]
        )
    ),
}


# --------------------------------------------------------------------- #
# Envelope + round-trip validation
# --------------------------------------------------------------------- #


def dumps(value: object, validate: bool = False) -> str:
    """Encode to a canonical, versioned JSON string.

    ``validate=True`` decodes the result and re-encodes it, raising
    :class:`CodecError` unless the bytes match — catching any value that
    would not survive persistence *before* it is written.
    """
    text = canonical_json({"v": CODEC_VERSION, "data": encode_value(value)})
    if validate and dumps(loads(text)) != text:
        raise CodecError(f"round-trip validation failed for {value!r}")
    return text


def loads(text: str) -> object:
    """Decode a string produced by :func:`dumps`."""
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"invalid JSON: {exc}") from exc
    if not isinstance(envelope, dict) or "v" not in envelope or "data" not in envelope:
        raise CodecError("payload is not a codec envelope")
    if envelope["v"] != CODEC_VERSION:
        raise CodecError(
            f"codec version mismatch: payload v{envelope['v']}, "
            f"supported v{CODEC_VERSION}"
        )
    return decode_value(envelope["data"])


# --------------------------------------------------------------------- #
# Whole-algorithm snapshots
# --------------------------------------------------------------------- #


def encode_algorithm(algorithm: WarehouseAlgorithm) -> Dict[str, object]:
    """Encode a live warehouse algorithm (any protocol family) to tagged
    JSON data: the view definition(s), the materialized contents, the
    constructor options, and the full pending protocol state.

    Dispatch is on the algorithm's ``codec_tag`` class attribute — the
    routed protocol made every registry family (single- or multi-source)
    share the generic ``algo`` envelope, with owners and other
    constructor options carried by ``durable_config()``.
    """
    if getattr(algorithm, "codec_tag", "algo") == "algo.catalog":
        catalog = cast("WarehouseCatalog", algorithm)
        return {
            "$": "algo.catalog",
            "share": catalog.share_compensation,
            "members": [
                [name, encode_algorithm(member)]
                for name, member in catalog.algorithms.items()
            ],
            "pending": encode_value(catalog.pending_state()),
        }
    return {
        "$": "algo",
        "name": algorithm.name,
        "view": encode_value(algorithm.view),
        "mv": encode_value(algorithm.mv.as_bag()),
        "config": encode_value(algorithm.durable_config()),
        "pending": encode_value(algorithm.pending_state()),
    }


def decode_algorithm(data: Dict[str, Any]) -> WarehouseAlgorithm:
    """Rebuild a live algorithm from :func:`encode_algorithm` output."""
    from repro.core.registry import create_algorithm
    from repro.warehouse.catalog import WarehouseCatalog

    tag = data.get("$")
    if tag == "algo.catalog":
        members = {
            name: decode_algorithm(payload) for name, payload in data["members"]
        }
        catalog = WarehouseCatalog(
            members, share_compensation=bool(data.get("share", False))
        )
        catalog.restore_pending_state(
            cast(Dict[str, Any], decode_value(data["pending"]))
        )
        return catalog
    if tag == "algo":
        config = cast(Dict[str, Any], decode_value(data["config"]))
        try:
            algorithm = create_algorithm(
                data["name"],
                cast(View, decode_value(data["view"])),
                cast(SignedBag, decode_value(data["mv"])),
                **config,
            )
        except KeyError as exc:
            raise CodecError(f"cannot rebuild algorithm: {exc}") from None
        algorithm.restore_pending_state(
            cast(Dict[str, Any], decode_value(data["pending"]))
        )
        return algorithm
    raise CodecError(f"unknown algorithm payload tag {tag!r}")


def dumps_algorithm(algorithm: WarehouseAlgorithm, validate: bool = True) -> str:
    """Canonical string form of a live algorithm, round-trip validated.

    Validation here is structural *and* behavioral: the decoded twin must
    re-encode to the same bytes, which covers view contents, pending
    queries, and every algorithm-specific buffer.
    """
    text = canonical_json({"v": CODEC_VERSION, "data": encode_algorithm(algorithm)})
    if validate:
        twin = loads_algorithm(text)
        if dumps_algorithm(twin, validate=False) != text:
            raise CodecError(
                f"algorithm round-trip validation failed for {algorithm!r}"
            )
    return text


def loads_algorithm(text: str) -> WarehouseAlgorithm:
    """Decode a string produced by :func:`dumps_algorithm`."""
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"invalid JSON: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("v") != CODEC_VERSION:
        raise CodecError("payload is not a supported algorithm envelope")
    return decode_algorithm(envelope["data"])
