"""Crash recovery: snapshot + WAL replay → a live warehouse algorithm.

Algorithms are deterministic state machines over their received messages
(Section 3's atomic-event model), so recovery is state-machine
replication:

1. decode the newest valid snapshot (the pre-crash algorithm, frozen as
   of some LSN);
2. replay every ``"recv"`` record with a later LSN, in order, feeding
   each logged message back through the same ``on_update`` /
   ``on_answer`` / ``on_refresh`` entry points — and *discarding* the
   requests those calls return, because the pre-crash warehouse already
   sent them (or crashed before sending, in which case step 3 covers it);
3. collect :meth:`pending_requests` — one request per query still in the
   UQS — for the harness to re-issue.  Sources answer re-asked queries
   against their *current* state; per-channel FIFO makes that exactly
   what a late original answer would have contained, so the algorithms'
   compensation reasoning survives the crash unchanged.

Re-issue can race a pre-crash answer already in flight, producing a
duplicate answer for the same query id; the recovered warehouse drops
answers whose id is no longer pending (see ``runtime/actors.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, cast

from repro.durability.codec import decode_algorithm, decode_value
from repro.durability.wal import RECV, _lsn_of, read_latest_snapshot, read_records
from repro.errors import ProtocolError, RecoveryError
from repro.kernel.dispatch import dispatch_event, event_kind
from repro.messaging.messages import Message, QueryRequest

if TYPE_CHECKING:
    from repro.core.protocol import WarehouseAlgorithm
    from repro.obs.instrument import Observability


class RecoveryResult:
    """What :func:`recover` reconstructed, plus how it got there."""

    __slots__ = (
        "algorithm",
        "snapshot_lsn",
        "last_lsn",
        "replayed",
        "torn_records",
        "reissue",
    )

    def __init__(
        self,
        algorithm: WarehouseAlgorithm,
        snapshot_lsn: int,
        last_lsn: int,
        replayed: int,
        torn_records: int,
        reissue: List[Tuple[Optional[str], QueryRequest]],
    ) -> None:
        self.algorithm = algorithm
        self.snapshot_lsn = snapshot_lsn
        self.last_lsn = last_lsn
        self.replayed = replayed
        self.torn_records = torn_records
        self.reissue = reissue

    def __repr__(self) -> str:
        return (
            f"RecoveryResult(snapshot_lsn={self.snapshot_lsn}, "
            f"last_lsn={self.last_lsn}, replayed={self.replayed}, "
            f"reissue={len(self.reissue)})"
        )


def _replay_one(
    algorithm: WarehouseAlgorithm, origin: Optional[str], message: Message
) -> None:
    """Feed one logged message through the algorithm, discarding requests.

    Replay goes through the same :func:`dispatch_event` the live kernels
    use — routed protocol, no per-family dispatch — because the pre-crash
    warehouse already sent whatever the call returns (or crashed before
    sending, in which case the re-issue pass covers it).
    """
    try:
        event_kind(message)
    except ProtocolError:
        raise RecoveryError(f"cannot replay message {message!r}") from None
    dispatch_event(algorithm, origin, message)


def recover(
    directory: str, obs: Optional[Observability] = None
) -> RecoveryResult:
    """Rebuild the warehouse algorithm persisted in ``directory``.

    ``obs`` (an :class:`repro.obs.instrument.Observability`) records the
    recovery as a ``wh.recovery`` span linked to the crash that caused it
    plus the ``repro_warehouse_recoveries_total`` /
    ``repro_recovery_replayed_total`` counters.
    """
    snapshot_lsn, payload = read_latest_snapshot(directory)
    algorithm = decode_algorithm(payload)
    records, torn = read_records(directory)
    replayed = 0
    last_lsn = snapshot_lsn
    for record in records:
        last_lsn = max(last_lsn, _lsn_of(record))
        if _lsn_of(record) <= snapshot_lsn or record["type"] != RECV:
            continue
        data = cast(Dict[str, Any], record["data"])
        try:
            origin = cast(Optional[str], data["origin"])
            message = cast(Message, decode_value(data["message"]))
        except (TypeError, KeyError) as exc:
            raise RecoveryError(
                f"malformed recv record at LSN {record['lsn']}: {exc}"
            ) from exc
        _replay_one(algorithm, origin, message)
        replayed += 1
    reissue = list(algorithm.pending_requests())
    if obs is not None:
        obs.recovery(snapshot_lsn, replayed, len(reissue), torn)
    return RecoveryResult(
        algorithm=algorithm,
        snapshot_lsn=snapshot_lsn,
        last_lsn=last_lsn,
        replayed=replayed,
        torn_records=torn,
        reissue=reissue,
    )
