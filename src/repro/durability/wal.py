"""Append-only, CRC-checked write-ahead log with compacting snapshots.

Layout of a WAL directory:

- ``wal.jsonl`` — one record per line, in LSN order.  Each line is the
  canonical JSON of ``{"lsn", "type", "data", "crc"}``, where ``crc`` is
  the CRC-32 of the canonical JSON of the record *without* the crc field.
  Because the codec's canonical form is deterministic, re-encoding on
  read reproduces the exact bytes the CRC was computed over.
- ``snapshot-<lsn>.json`` — a full algorithm snapshot taken after the
  record with that LSN, same CRC scheme, written atomically (temp file +
  rename) so a crash mid-snapshot can never leave a half-written file
  under the final name.
- ``wal.lock`` — exclusive-ownership marker holding the writer's pid.
  Opening a directory another live process has open raises
  :class:`~repro.errors.WalLocked`; stale locks (owner dead) are stolen.

Record types the warehouse writes (see ``runtime/actors.py``):

- ``"recv"`` — a message the warehouse received, with its channel and
  origin.  **The only replayed type**: algorithms are deterministic state
  machines, so replaying received messages in order reconstructs the
  exact pre-crash state (state-machine replication).
- ``"send"`` / ``"event"`` — informational records of routed requests and
  processed events; recovery skips them but they make the log a complete
  audit trail of warehouse activity.

Durability/recovery contract: a record is logged *before* the message is
dispatched to the algorithm, and crash injection only fires at event
boundaries after both, so the log never lags the in-memory state.  A torn
final line (crash mid-append) fails its CRC and is truncated on read;
corruption anywhere *else* raises :class:`WalCorruption`.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, cast

from repro.durability.codec import canonical_json, encode_algorithm
from repro.errors import RecoveryError, WalCorruption, WalLocked

if TYPE_CHECKING:
    from repro.core.protocol import WarehouseAlgorithm
    from repro.obs.instrument import Observability

WAL_FILENAME = "wal.jsonl"
LOCK_FILENAME = "wal.lock"
SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".json"

#: Record types (the warehouse's event vocabulary).
RECV = "recv"
SEND = "send"
EVENT = "event"


def _crc(payload: Dict[str, object]) -> int:
    return zlib.crc32(canonical_json(payload).encode("utf-8"))


def _seal(payload: Dict[str, object]) -> str:
    """Attach the CRC and render the canonical line/file body."""
    sealed = dict(payload)
    sealed["crc"] = _crc(payload)
    return canonical_json(sealed)


def _unseal(text: str) -> Optional[Dict[str, object]]:
    """Parse and CRC-check one sealed payload; None when invalid."""
    try:
        record = json.loads(text)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) or "crc" not in record:
        return None
    crc = record.pop("crc")
    if _crc(record) != crc:
        return None
    return record


def _lsn_of(record: Dict[str, object]) -> int:
    """The record's LSN (every sealed record carries an int ``lsn``)."""
    return cast(int, record["lsn"])


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a lock-holding process."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # Alive, owned by someone else — we may not signal it, but it runs.
        return True
    except OSError:
        return False
    return True


def _snapshot_name(lsn: int) -> str:
    return f"{SNAPSHOT_PREFIX}{lsn:010d}{SNAPSHOT_SUFFIX}"


def _snapshot_lsns(directory: str) -> List[int]:
    """LSNs of snapshot files present, ascending."""
    lsns = []
    for name in os.listdir(directory):
        if name.startswith(SNAPSHOT_PREFIX) and name.endswith(SNAPSHOT_SUFFIX):
            stem = name[len(SNAPSHOT_PREFIX) : -len(SNAPSHOT_SUFFIX)]
            try:
                lsns.append(int(stem))
            except ValueError:
                continue
    return sorted(lsns)


class WriteAheadLog:
    """The warehouse's durable log.

    Parameters
    ----------
    directory:
        Where ``wal.jsonl`` and snapshots live; created if missing.
        Reopening a directory with an existing log resumes its LSN
        sequence (this is how the recovered warehouse continues logging).
    fsync:
        ``True`` forces ``os.fsync`` after every append — real crash
        safety at real cost (the WAL-overhead benchmark quantifies it).
        The default flushes to the OS only, which is what the in-process
        crash injection needs.
    snapshot_every:
        Take a compacting snapshot every N appended records (via
        :meth:`maybe_snapshot`); ``None`` disables automatic snapshots.
    keep_snapshots:
        Retain this many most-recent snapshots when pruning.
    obs:
        Optional :class:`repro.obs.instrument.Observability`; appends
        bump ``repro_wal_append_total{type=...}`` and snapshots emit a
        ``wal.snapshot`` span.
    """

    def __init__(
        self,
        directory: str,
        fsync: bool = False,
        snapshot_every: Optional[int] = None,
        keep_snapshots: int = 2,
        obs: Optional[Observability] = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        if keep_snapshots < 1:
            raise ValueError(f"keep_snapshots must be >= 1, got {keep_snapshots}")
        self.directory = directory
        self.fsync = fsync
        self.snapshot_every = snapshot_every
        self.keep_snapshots = keep_snapshots
        self.obs = obs
        # Parent directories included: sharded runs hand each shard a
        # nested ``wal_dir/shard-<i>`` that does not exist yet.
        os.makedirs(directory, exist_ok=True)
        self._lock_path = os.path.join(directory, LOCK_FILENAME)
        self._locked = False
        self._acquire_lock()
        self._path = os.path.join(directory, WAL_FILENAME)
        self._lsn = 0
        self._since_snapshot = 0
        self.appended = 0  # records written by this handle (for metrics)
        self.snapshots_taken = 0
        if os.path.exists(self._path):
            records, torn = read_records(directory)
            if records:
                self._lsn = _lsn_of(records[-1])
            if torn:
                # Drop the torn tail now: appending after a partial line
                # would weld the new record onto the damaged bytes.
                self._rewrite(records)
        lsns = _snapshot_lsns(directory)
        if lsns:
            self._lsn = max(self._lsn, lsns[-1])
        self._file = open(self._path, "a", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # Locking
    # ------------------------------------------------------------------ #

    def _acquire_lock(self) -> None:
        """Take exclusive ownership of the directory, or raise WalLocked.

        ``O_CREAT | O_EXCL`` makes creation the atomic test-and-set; the
        file body records the owner's pid.  A lock whose owner is no
        longer alive is stale (the process died without :meth:`close`)
        and is stolen — recovery after a real crash must be able to
        reopen the directory it owns.
        """
        for _ in range(2):
            try:
                fd = os.open(self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                owner = self._lock_owner()
                if owner is not None and _pid_alive(owner):
                    raise WalLocked(
                        f"WAL directory {self.directory!r} is already open "
                        f"in live process {owner} — two writers would "
                        f"interleave an unreplayable log"
                    )
                try:  # Stale: the owner is gone. Remove and retry once.
                    os.remove(self._lock_path)
                except FileNotFoundError:
                    pass
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(str(os.getpid()))
            self._locked = True
            return
        raise WalLocked(f"could not acquire {self._lock_path!r} after stale steal")

    def _lock_owner(self) -> Optional[int]:
        try:
            with open(self._lock_path, "r", encoding="utf-8") as handle:
                return int(handle.read().strip())
        except (OSError, ValueError):
            return None

    def _release_lock(self) -> None:
        if self._locked:
            self._locked = False
            try:
                os.remove(self._lock_path)
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append(self, record_type: str, data: object) -> int:
        """Append one record (``data`` is already-encoded tagged JSON)."""
        self._lsn += 1
        line = _seal({"lsn": self._lsn, "type": record_type, "data": data})
        self._file.write(line + "\n")
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.appended += 1
        self._since_snapshot += 1
        if self.obs is not None:
            self.obs.wal_append(record_type)
        return self._lsn

    @property
    def last_lsn(self) -> int:
        return self._lsn

    # ------------------------------------------------------------------ #
    # Snapshots + compaction
    # ------------------------------------------------------------------ #

    def snapshot(self, algorithm: WarehouseAlgorithm) -> int:
        """Snapshot the algorithm as of the current LSN, then compact.

        The snapshot captures everything (view contents + pending state),
        so every WAL record with ``lsn <= snapshot lsn`` becomes dead
        weight: the log is rewritten without them and snapshots older
        than ``keep_snapshots`` are pruned.
        """
        lsn = self._lsn
        body = _seal({"lsn": lsn, "algo": encode_algorithm(algorithm)})
        final = os.path.join(self.directory, _snapshot_name(lsn))
        temp = final + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(body + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(temp, final)
        self._compact(lsn)
        self._prune_snapshots()
        self._since_snapshot = 0
        self.snapshots_taken += 1
        if self.obs is not None:
            self.obs.wal_snapshot(lsn)
        return lsn

    def maybe_snapshot(self, algorithm: WarehouseAlgorithm) -> Optional[int]:
        """Snapshot when ``snapshot_every`` appends have accumulated."""
        if self.snapshot_every is None:
            return None
        if self._since_snapshot < self.snapshot_every:
            return None
        return self.snapshot(algorithm)

    def _compact(self, snapshot_lsn: int) -> None:
        records, _ = read_records(self.directory)
        live = [r for r in records if _lsn_of(r) > snapshot_lsn]
        self._file.close()
        self._rewrite(live)
        self._file = open(self._path, "a", encoding="utf-8")

    def _rewrite(self, records: List[Dict[str, object]]) -> None:
        """Atomically replace ``wal.jsonl`` with exactly these records."""
        temp = self._path + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    _seal(
                        {
                            "lsn": record["lsn"],
                            "type": record["type"],
                            "data": record["data"],
                        }
                    )
                    + "\n"
                )
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(temp, self._path)

    def _prune_snapshots(self) -> None:
        lsns = _snapshot_lsns(self.directory)
        for lsn in lsns[: -self.keep_snapshots]:
            os.remove(os.path.join(self.directory, _snapshot_name(lsn)))

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()
        self._release_lock()


# --------------------------------------------------------------------- #
# Reading (used by recovery)
# --------------------------------------------------------------------- #


def read_records(directory: str) -> Tuple[List[Dict[str, object]], int]:
    """All valid WAL records in LSN order, plus the torn-tail line count.

    A run of invalid lines at the *end* of the file is a torn tail (the
    crash hit mid-append) and is silently dropped — the count of dropped
    lines is returned for reporting.  An invalid line *followed by* a
    valid one cannot be explained by a torn write and raises
    :class:`WalCorruption`, as does any LSN that fails to increase.
    """
    path = os.path.join(directory, WAL_FILENAME)
    if not os.path.exists(path):
        return [], 0
    records: List[Dict[str, object]] = []
    torn = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = _unseal(line)
            if record is None:
                torn += 1
                continue
            if torn:
                raise WalCorruption(
                    f"{path}:{line_number}: valid record after {torn} "
                    f"corrupt line(s) — log is damaged beyond a torn tail"
                )
            if records and _lsn_of(record) <= _lsn_of(records[-1]):
                raise WalCorruption(
                    f"{path}:{line_number}: LSN {record['lsn']} does not "
                    f"advance past {records[-1]['lsn']}"
                )
            records.append(record)
    return records, torn


def read_latest_snapshot(directory: str) -> Tuple[int, Dict[str, object]]:
    """The newest valid snapshot as ``(lsn, algorithm payload)``.

    Falls back to older snapshots when the newest fails its CRC; raises
    :class:`RecoveryError` when none exists at all and
    :class:`WalCorruption` when snapshots exist but all are invalid.
    """
    lsns = _snapshot_lsns(directory)
    if not lsns:
        raise RecoveryError(f"no snapshot found in {directory!r}")
    for lsn in reversed(lsns):
        path = os.path.join(directory, _snapshot_name(lsn))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                body = _unseal(handle.read().strip())
        except OSError:
            body = None
        if body is None or body.get("lsn") != lsn:
            continue
        return lsn, cast(Dict[str, object], body["algo"])
    raise WalCorruption(f"every snapshot in {directory!r} failed validation")
