"""Table 1 — the performance-model variables and their default values.

=====  ================================================  =======
Name   Meaning                                           Default
=====  ================================================  =======
C      Cardinality of a relation                         100
S      Size of projected attributes                      4 bytes
sigma  Selection factor                                  1/2
J      Join factor                                       4
K      Tuples per physical block                         20
k      Number of updates at the source                   (per experiment)
s      Updates skipped before recomputing the view, <=k  (per experiment)
=====  ================================================  =======

Derived quantities used throughout Appendix D:

- ``I = ceil(C / K)`` — I/Os to read one entire base relation;
- ``I' = ceil(C / (2K))`` — double-block buffer groups for Scenario 2's
  nested-loop join.
"""

from __future__ import annotations

import math
from typing import Dict


class PaperParameters:
    """Immutable bundle of the Table 1 parameters."""

    __slots__ = ("cardinality", "tuple_bytes", "selectivity", "join_factor", "block_factor")

    def __init__(
        self,
        cardinality: int = 100,
        tuple_bytes: int = 4,
        selectivity: float = 0.5,
        join_factor: int = 4,
        block_factor: int = 20,
    ) -> None:
        if cardinality < 1:
            raise ValueError(f"cardinality must be >= 1, got {cardinality}")
        if tuple_bytes < 1:
            raise ValueError(f"tuple_bytes must be >= 1, got {tuple_bytes}")
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
        if join_factor < 1:
            raise ValueError(f"join_factor must be >= 1, got {join_factor}")
        if block_factor < 1:
            raise ValueError(f"block_factor must be >= 1, got {block_factor}")
        self.cardinality = cardinality
        self.tuple_bytes = tuple_bytes
        self.selectivity = selectivity
        self.join_factor = join_factor
        self.block_factor = block_factor

    # Short aliases matching the paper's symbols. ----------------------- #

    @property
    def C(self) -> int:  # noqa: N802 - paper notation
        return self.cardinality

    @property
    def S(self) -> int:  # noqa: N802 - paper notation
        return self.tuple_bytes

    @property
    def sigma(self) -> float:
        return self.selectivity

    @property
    def J(self) -> int:  # noqa: N802 - paper notation
        return self.join_factor

    @property
    def K(self) -> int:  # noqa: N802 - paper notation
        return self.block_factor

    @property
    def I(self) -> int:  # noqa: N802,E743 - paper notation
        """I/Os needed to read an entire base relation: ``ceil(C/K)``."""
        return math.ceil(self.cardinality / self.block_factor)

    @property
    def I_prime(self) -> int:  # noqa: N802 - paper notation
        """Double-block buffer groups of a relation: ``ceil(C/(2K))``."""
        return math.ceil(self.cardinality / (2 * self.block_factor))

    def replace(self, **overrides: object) -> "PaperParameters":
        """A copy with some fields replaced (parameter sweeps)."""
        fields: Dict[str, object] = {
            "cardinality": self.cardinality,
            "tuple_bytes": self.tuple_bytes,
            "selectivity": self.selectivity,
            "join_factor": self.join_factor,
            "block_factor": self.block_factor,
        }
        unknown = set(overrides) - set(fields)
        if unknown:
            raise TypeError(f"unknown parameter(s): {sorted(unknown)}")
        fields.update(overrides)
        return PaperParameters(**fields)  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, object]:
        return {
            "C": self.cardinality,
            "S": self.tuple_bytes,
            "sigma": self.selectivity,
            "J": self.join_factor,
            "K": self.block_factor,
            "I": self.I,
            "I_prime": self.I_prime,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PaperParameters):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return (
            f"PaperParameters(C={self.C}, S={self.S}, sigma={self.sigma}, "
            f"J={self.J}, K={self.K})"
        )


#: The defaults of Table 1.
DEFAULTS = PaperParameters()
