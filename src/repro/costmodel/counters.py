"""Measured costs: the recorder the simulation driver feeds.

Accounting follows Section 6's conventions exactly:

- ``M`` counts query and answer messages only — "identical update
  notification messages are sent to the warehouse [in RV and ECA], so
  these costs are not included".
- ``B`` counts bytes flowing source -> warehouse in answers: ``S`` bytes
  per answer tuple (Table 1's "size of projected attributes").
- ``IO`` is charged per evaluated source term by a pluggable scenario
  estimator (:mod:`repro.costmodel.io_scenarios`); pass ``None`` to skip
  I/O accounting.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.costmodel.parameters import PaperParameters
from repro.messaging.messages import QueryAnswer, QueryRequest
from repro.relational.expressions import Query
from repro.source.base import Source


class CostRecorder:
    """Accumulates M, B, and IO over one simulation run."""

    def __init__(
        self,
        params: Optional[PaperParameters] = None,
        io_estimator: Optional[object] = None,
    ) -> None:
        self.params = params if params is not None else PaperParameters()
        self.io_estimator = io_estimator
        self.query_messages = 0
        self.answer_messages = 0
        self.answer_tuples = 0
        self.bytes_transferred = 0
        self.io_count = 0
        self.terms_evaluated = 0

    # ------------------------------------------------------------------ #
    # Hooks called by the driver
    # ------------------------------------------------------------------ #

    def record_request(self, request: QueryRequest) -> None:
        self.query_messages += 1

    def record_answer(self, answer: QueryAnswer) -> None:
        self.answer_messages += 1
        tuples = answer.answer.total_count()
        self.answer_tuples += tuples
        self.bytes_transferred += tuples * self.params.S

    def message_size(self, message: object) -> int:
        """On-the-wire bytes of one message, per Section 6's conventions.

        Only answer payloads are charged (``S`` bytes per tuple); requests
        and update notifications are size 0, mirroring :attr:`bytes`.
        Usable as a :class:`~repro.messaging.channel.FifoChannel` sizer, so
        ``channel.sent_bytes`` reproduces the ``B`` metric on the wire.
        """
        if isinstance(message, QueryAnswer):
            return message.answer.total_count() * self.params.S
        return 0

    def record_evaluation(self, query: Query, source: Source) -> None:
        self.terms_evaluated += query.term_count()
        if self.io_estimator is not None:
            self.io_count += self.io_estimator.estimate_query(query, source)

    # ------------------------------------------------------------------ #
    # The paper's metrics
    # ------------------------------------------------------------------ #

    @property
    def messages(self) -> int:
        """``M`` — query plus answer messages."""
        return self.query_messages + self.answer_messages

    @property
    def bytes(self) -> int:
        """``B`` — answer bytes (source -> warehouse)."""
        return self.bytes_transferred

    @property
    def ios(self) -> int:
        """``IO`` — estimated I/Os performed at the source."""
        return self.io_count

    def summary(self) -> Dict[str, int]:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "ios": self.ios,
            "answer_tuples": self.answer_tuples,
            "terms_evaluated": self.terms_evaluated,
        }

    def publish(self, registry, labels: Optional[Dict[str, str]] = None) -> None:
        """Fold this recorder's totals into an obs metrics registry.

        Creates/updates ``repro_cost_<metric>_total`` counters (one per
        :meth:`summary` key) so the paper's M/B/IO accounting lives in
        the same exported namespace as the runtime metrics.
        """
        from repro.obs.metrics import ingest_mapping

        ingest_mapping(
            registry,
            "repro_cost",
            self.summary(),
            help_text="Section 6 cost-model accounting (CostRecorder)",
            labels=labels,
        )

    def __repr__(self) -> str:
        return (
            f"CostRecorder(M={self.messages}, B={self.bytes}, IO={self.ios})"
        )
