"""Cost model: the paper's three metrics (M, B, IO), analytic and measured.

- :mod:`repro.costmodel.parameters` — Table 1's variables and defaults;
- :mod:`repro.costmodel.analytic` — Appendix D's closed forms for bytes
  transferred and I/O under both scenarios, plus Section 6.1's message
  counts;
- :mod:`repro.costmodel.counters` — a recorder the simulation driver feeds,
  measuring messages and bytes exactly and estimating I/O per evaluated
  term;
- :mod:`repro.costmodel.io_scenarios` — per-term I/O estimators encoding
  the access-path assumptions of Scenario 1 (clustering indexes, ample
  memory) and Scenario 2 (no indexes, three buffer blocks, nested loops).
"""

from repro.costmodel.counters import CostRecorder
from repro.costmodel.io_scenarios import (
    IndexCatalog,
    Scenario1Estimator,
    Scenario2Estimator,
)
from repro.costmodel.parameters import PaperParameters

__all__ = [
    "CostRecorder",
    "IndexCatalog",
    "PaperParameters",
    "Scenario1Estimator",
    "Scenario2Estimator",
]
