"""Per-term I/O estimators for the two access scenarios of Section 6.3.

The paper charges I/O at the source per *term*, with no caching and no
cross-term optimization ("if a query consists of several terms, each one
is evaluated independently").  Fully-bound terms are never shipped, so
they cost nothing.

**Scenario 1** (clustering indexes + ample memory): a term is evaluated by
seeding from a bound tuple and expanding along join edges with index
probes; the optimizer may instead scan a relation outright when that is
cheaper (the paper's ``min(J, I)`` terms).  The greedy expansion below
reproduces every per-term count derived in Appendix D.3.1 — e.g.
``IO(Q1) = 1 + min(J, I)``, ``IO(Q2) = 2``, ``IO(Q3) = 2 min(J, I)``, and
cost 1 for the two-bound compensating terms.

**Scenario 2** (no indexes, three buffer blocks, nested loops): costs
depend only on how many relations remain free — ``I`` for one,
``I' * I`` for two, ``I^3`` for three (Appendix D.3.2).  As in the paper,
the cost of reading the outer relation's own blocks is folded into the
loop counts.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.costmodel.parameters import PaperParameters
from repro.relational.conditions import Attr, Comparison, flatten_conjuncts
from repro.relational.expressions import Query, Term
from repro.source.base import Source

CLUSTERED = "clustered"
UNCLUSTERED = "unclustered"


class IndexCatalog:
    """Which indexes exist at the source (Scenario 1's access paths).

    The paper's Example 6 catalog: clustering indexes on ``r1.X``,
    ``r2.X`` and ``r3.Y``, and a non-clustering index on ``r2.Y``
    (:func:`example6_catalog`).
    """

    def __init__(self, entries: Optional[Dict[Tuple[str, str], str]] = None) -> None:
        self._entries: Dict[Tuple[str, str], str] = {}
        if entries:
            for key, kind in entries.items():
                self.add(key[0], key[1], kind)

    def add(self, relation: str, attribute: str, kind: str) -> None:
        if kind not in (CLUSTERED, UNCLUSTERED):
            raise ValueError(f"index kind must be clustered/unclustered, got {kind!r}")
        self._entries[(relation, attribute)] = kind

    def kind(self, relation: str, attribute: str) -> Optional[str]:
        return self._entries.get((relation, attribute))


def example6_catalog() -> IndexCatalog:
    """The index catalog assumed by Appendix D.3.1 for Example 6."""
    return IndexCatalog(
        {
            ("r1", "X"): CLUSTERED,
            ("r2", "X"): CLUSTERED,
            ("r2", "Y"): UNCLUSTERED,
            ("r3", "Y"): CLUSTERED,
        }
    )


def _join_edges(term: Term) -> List[Tuple[int, str, int, str]]:
    """Equality edges between different operands: (op_i, attr_i, op_j, attr_j)."""
    offsets: List[int] = []
    offset = 0
    for operand in term.operands:
        offsets.append(offset)
        offset += operand.schema.arity

    def locate(position: int) -> Tuple[int, str]:
        for index in range(len(term.operands) - 1, -1, -1):
            if position >= offsets[index]:
                schema = term.operands[index].schema
                return index, schema.attributes[position - offsets[index]]
        raise AssertionError("unreachable")

    edges: List[Tuple[int, str, int, str]] = []
    for conjunct in flatten_conjuncts(term.condition):
        if not (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, Attr)
            and isinstance(conjunct.right, Attr)
        ):
            continue
        left = locate(term.product.resolve(conjunct.left.name))
        right = locate(term.product.resolve(conjunct.right.name))
        if left[0] != right[0]:
            edges.append((left[0], left[1], right[0], right[1]))
    return edges


class Scenario1Estimator:
    """Index-probe expansion with a full-scan escape hatch."""

    name = "scenario1"

    def __init__(self, params: PaperParameters, catalog: Optional[IndexCatalog] = None) -> None:
        self.params = params
        self.catalog = catalog if catalog is not None else example6_catalog()

    def _blocks(self, source: Source, relation: str) -> int:
        return max(1, math.ceil(source.cardinality(relation) / self.params.K))

    def estimate_term(self, term: Term, source: Source) -> int:
        free = [i for i, op in enumerate(term.operands) if not op.is_bound]
        if not free:
            return 0
        bound = [i for i, op in enumerate(term.operands) if op.is_bound]
        if not bound:
            # Full recomputation: read every relation once.
            return sum(self._blocks(source, term.operands[i].source_relation) for i in free)

        edges = _join_edges(term)
        J, K = self.params.J, self.params.K
        probe_unit = max(1, math.ceil(J / K))

        resolved: Dict[int, int] = {i: 1 for i in bound}  # operand -> tuple count
        remaining: Set[int] = set(free)
        total = 0
        while remaining:
            best: Optional[Tuple[int, int, int]] = None  # (cost, operand, count)
            for target in sorted(remaining):
                relation = term.operands[target].source_relation
                scan_cost = self._blocks(source, relation)
                probe_cost: Optional[int] = None
                result_count: Optional[int] = None
                for a, attr_a, b, attr_b in edges:
                    if a == target and b in resolved:
                        side_attr, m = attr_a, resolved[b]
                    elif b == target and a in resolved:
                        side_attr, m = attr_b, resolved[a]
                    else:
                        continue
                    kind = self.catalog.kind(relation, side_attr)
                    if kind == CLUSTERED:
                        cost = m * probe_unit
                    elif kind == UNCLUSTERED:
                        cost = m * J
                    else:
                        # No index on the join attribute: scanning is the
                        # only plan for this edge, but the join result size
                        # is the same.
                        cost = scan_cost
                    if probe_cost is None or cost < probe_cost:
                        probe_cost = cost
                    if result_count is None or m * J < result_count:
                        result_count = m * J
                if probe_cost is None:
                    # Not yet adjacent to a resolved operand; defer.
                    continue
                # The optimizer may scan instead of probing (min(J, I)); a
                # scan reads the same matching tuples, so the expansion
                # count is unchanged.
                cost = min(probe_cost, scan_cost)
                candidate = (cost, target, result_count or 0)
                if best is None or candidate[0] < best[0]:
                    best = candidate
            if best is None:
                # Disconnected free relations: scan each.
                for target in sorted(remaining):
                    relation = term.operands[target].source_relation
                    total += self._blocks(source, relation)
                    resolved[target] = source.cardinality(relation)
                remaining.clear()
                break
            cost, target, count = best
            total += cost
            resolved[target] = max(1, count)
            remaining.discard(target)
        return total

    def estimate_query(self, query: Query, source: Source) -> int:
        return sum(self.estimate_term(t, source) for t in query.source_terms().terms)


class Scenario2Estimator:
    """No indexes, three memory blocks, nested-loop joins."""

    name = "scenario2"

    def __init__(self, params: PaperParameters) -> None:
        self.params = params

    def _blocks(self, source: Source, relation: str) -> int:
        return max(1, math.ceil(source.cardinality(relation) / self.params.K))

    def _double_blocks(self, source: Source, relation: str) -> int:
        return max(1, math.ceil(source.cardinality(relation) / (2 * self.params.K)))

    def estimate_term(self, term: Term, source: Source) -> int:
        free = [op.source_relation for op in term.operands if not op.is_bound]
        if not free:
            return 0
        if len(free) == 1:
            return self._blocks(source, free[0])
        if len(free) == 2:
            a, b = free
            return min(
                self._double_blocks(source, a) * self._blocks(source, b),
                self._double_blocks(source, b) * self._blocks(source, a),
            )
        total = 1
        for relation in free:
            total *= self._blocks(source, relation)
        return total

    def estimate_query(self, query: Query, source: Source) -> int:
        return sum(self.estimate_term(t, source) for t in query.source_terms().terms)
