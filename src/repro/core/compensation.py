"""Compensation algebra shared by the ECA family.

Lemma B.2 — ``Q[ss_{j-1}] = Q[ss_j] - Q<U_j>[ss_j]`` — composes over a
sequence of updates into an alternating sum (the inclusion-exclusion over
prefixes).  :func:`backdate` materializes that sum: a query expression
that, evaluated on the state *after* ``updates`` have executed, yields the
value the original query had *before* them.

Three consumers:

- LCA backdates a queued update's query against updates already seen;
- BatchECA backdates each batched update's delta against the rest of the
  batch, and compensates pending queries against the whole batch;
- DeferredECA is BatchECA with a read-triggered flush.

Terms that end up fully bound vanish naturally on evaluation; callers
split them off with :meth:`Query.fully_bound_terms` for local evaluation.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.relational.expressions import Query
from repro.relational.views import View
from repro.source.updates import Update


def backdate(query: Query, updates: Sequence[Update]) -> Query:
    """The query reading as of *before* ``updates`` (in source order).

    ``D(Q, []) = Q`` and ``D(Q, [U, rest...]) = D(Q, rest) - D(Q<U>, rest)``.
    The recursion collapses quickly in practice: substituting a second
    update on the same relation annihilates a term, and a view over n
    relations vanishes entirely after n substitutions.
    """
    if query.is_empty() or not updates:
        return query
    head, rest = updates[0], updates[1:]
    substituted = query.substitute(head.relation, head.signed_tuple())
    return backdate(query, rest) - backdate(substituted, rest)


def batch_delta_query(view: View, updates: Sequence[Update]) -> Query:
    """One query whose post-batch evaluation is the whole batch's delta.

    ``sum_j D(V<U_j>, updates[j+1:])`` — each update's incremental query,
    backdated against the updates that follow it in the batch, so that
    evaluating every term on the post-batch state telescopes
    ``V[ss_pre] -> V[ss_post]``.

    Updates on relations the view does not involve are skipped entirely
    (they cannot affect the view *or* the backdating of updates that do).
    """
    relevant: List[Update] = [u for u in updates if view.involves(u.relation)]
    total = Query()
    for index, update in enumerate(relevant):
        base = view.substitute(update.relation, update.signed_tuple())
        total = total + backdate(base, relevant[index + 1 :])
    return total


def pending_compensation(query: Query, updates: Sequence[Update]) -> Query:
    """Offset the effect of ``updates`` on an in-flight query.

    The pending query will be evaluated after all of ``updates`` (FIFO
    deduction), but its answer is *meant* to read as of before them; the
    correction to ship alongside is ``D(Q, updates) - Q``.
    """
    relevant = [u for u in updates if _touches(query, u)]
    if not relevant:
        return Query()
    return backdate(query, relevant) - query


def staged_compensation(
    query: Query, batch: Sequence[Update], seen_count: int
) -> Query:
    """Correction for a query that saw the first ``seen_count`` of ``batch``.

    The query's answer was (or will be) evaluated on the state after
    ``batch[:seen_count]``; the correction, *itself evaluated after the
    whole batch*, is

        - sum over i < seen_count of D(Q<batch[i]>, batch[i+1:])

    Each contaminating update's substituted query is backdated against the
    **entire rest of the batch** — including updates the query never saw —
    because the correction's own evaluation happens post-batch.  With
    ``seen_count == len(batch)`` this is exactly
    :func:`pending_compensation`'s ``D(Q, batch) - Q``.
    """
    total = Query()
    for index in range(min(seen_count, len(batch))):
        update = batch[index]
        if not _touches(query, update):
            continue
        substituted = query.substitute(update.relation, update.signed_tuple())
        remaining = [u for u in batch[index + 1 :] if _touches(substituted, u)]
        total = total - backdate(substituted, remaining)
    return total


def _touches(query: Query, update: Update) -> bool:
    return any(
        update.relation in term.source_relation_names for term in query.terms
    )
