"""Algorithm D.1 — the Recompute-View strategy (RV).

Every ``s`` updates the warehouse ships the full view definition ``Q = V``
to the source and *replaces* the materialized view with the answer.
``s = 1`` is the paper's RV worst case (recompute after every update);
``s = k`` is the best case (recompute once, after the last update).

RV is strongly consistent: each installed state is the view evaluated on a
real source state, in answer order.  It converges for a k-update run only
when ``k`` is a multiple of ``s`` (otherwise the tail of updates is never
reflected); the workloads in the benchmark harness always choose ``s``
accordingly, matching the paper's analysis.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.protocol import WarehouseAlgorithm
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.relational.bag import SignedBag
from repro.relational.views import View


class RecomputeView(WarehouseAlgorithm):
    """Periodic full view recomputation.

    Parameters
    ----------
    view, initial:
        As for every :class:`WarehouseAlgorithm`.
    period:
        Recompute after every ``period`` relevant updates (the paper's
        ``s``, ``1 <= s <= k``).
    """

    name = "recompute"

    def __init__(
        self,
        view: View,
        initial: Optional[SignedBag] = None,
        period: int = 1,
    ) -> None:
        if period < 1:
            raise ValueError(f"recompute period must be >= 1, got {period}")
        super().__init__(view, initial)
        self.period = period
        self._count = 0

    def handle_update(self, notification: UpdateNotification) -> List[QueryRequest]:
        if not self.relevant(notification):
            return []
        self._count += 1
        if self._count < self.period:
            return []
        self._count = 0
        return [self._make_request(self.view.as_query())]

    def handle_answer(self, answer: QueryAnswer) -> List[QueryRequest]:
        self._retire(answer)
        self.mv.replace(answer.answer)
        return []

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def pending_state(self) -> Dict[str, Any]:
        state = super().pending_state()
        state["count"] = self._count
        return state

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        super().restore_pending_state(state)
        self._count = state["count"]

    def durable_config(self) -> Dict[str, Any]:
        return {"period": self.period}
