"""Algorithm 5.2 — the Eager Compensating Algorithm (ECA).

On receiving update ``U_i`` the warehouse sends

    Q_i = V<U_i> - sum over Q_j in UQS of Q_j<U_i>

The compensating terms offset the effect ``U_i`` will have on the pending
queries: FIFO delivery guarantees that if the warehouse has seen ``U_i``
before ``Q_j``'s answer, the source executed ``U_i`` before evaluating
``Q_j``, so ``Q_j`` will "see" ``U_i``'s tuple.

Answers accumulate in ``COLLECT`` and are installed into the view only when
the UQS drains — installing earlier would expose invalid intermediate
states (convergent but not consistent; see Section 5.2).

Following Appendix D, terms of ``Q_i`` in which *every* relation is bound
to a concrete tuple are not shipped to the source: they reference no base
data, so the warehouse evaluates them locally and feeds the result straight
into ``COLLECT``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.compensation import batch_delta_query, pending_compensation
from repro.core.protocol import WarehouseAlgorithm
from repro.messaging.messages import (
    QueryAnswer,
    QueryRequest,
    UpdateBatch,
    UpdateNotification,
)
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.relational.views import View


class ECA(WarehouseAlgorithm):
    """The Eager Compensating Algorithm — strongly consistent.

    Parameters
    ----------
    view, initial:
        As for every :class:`WarehouseAlgorithm`.
    buffer_answers:
        When True (the paper's algorithm, default) answers collect until
        the UQS is empty.  When False, each answer is applied to the view
        immediately — the variant Section 5.2 warns about, kept here so the
        consistency checker can demonstrate it is convergent but *not*
        consistent.
    """

    name = "eca"

    def __init__(
        self,
        view: View,
        initial: Optional[SignedBag] = None,
        buffer_answers: bool = True,
    ) -> None:
        super().__init__(view, initial)
        self.collect = SignedBag()
        self.buffer_answers = buffer_answers

    # ------------------------------------------------------------------ #
    # W_up
    # ------------------------------------------------------------------ #

    def handle_update(self, notification: UpdateNotification) -> List[QueryRequest]:
        if not self.relevant(notification):
            return []
        update = notification.update
        signed = update.signed_tuple()
        query = self.view.substitute(update.relation, signed)
        for pending in self.uqs_queries():
            query = query - pending.substitute(update.relation, signed)
        return self._dispatch(query)

    def handle_update_batch(self, batch: UpdateBatch) -> List[QueryRequest]:
        """The k-update generalization: one ``Q<U1,...,Uk>`` per batch.

        The batch's own delta is ``sum_j D(V<U_j>, rest-of-batch)``
        (Lemma B.2 backdating, so each member's incremental query reads as
        of its own source state), and every in-flight query gets one
        compensation ``D(Q_j, batch) - Q_j`` covering all k members at
        once — k round trips become one.
        """
        updates = [
            n.update for n in batch.notifications if self.relevant(n)
        ]
        if not updates:
            return []
        query = batch_delta_query(self.view, updates)
        for pending in self.uqs_queries():
            query = query + pending_compensation(pending, updates)
        return self._dispatch(query)

    def _dispatch(self, query: Query) -> List[QueryRequest]:
        """Evaluate fully-bound terms locally; ship the rest to the source."""
        local = query.fully_bound_terms()
        remote = query.source_terms()
        if not local.is_empty():
            self._absorb(local.evaluate({}))
        if remote.is_empty():
            # Nothing to ask the source; a flush may be due right now.
            self._maybe_install()
            return []
        return [self._make_request(remote)]

    # ------------------------------------------------------------------ #
    # W_ans
    # ------------------------------------------------------------------ #

    def handle_answer(self, answer: QueryAnswer) -> List[QueryRequest]:
        self._retire(answer)
        self._absorb(answer.answer)
        self._maybe_install()
        return []

    # ------------------------------------------------------------------ #
    # COLLECT handling
    # ------------------------------------------------------------------ #

    def _absorb(self, delta: SignedBag) -> None:
        if self.buffer_answers:
            self.collect.add_bag(delta)
        else:
            # The unbuffered strawman applies answers immediately; its
            # intermediate states may hold negative replication counts
            # (invalid states), but the final sum converges.
            self.mv.apply_delta(delta, on_negative="allow")

    def _maybe_install(self) -> None:
        if not self.buffer_answers:
            return
        if self.uqs:
            return
        if self.collect.is_empty():
            return
        self.mv.apply_delta(self.collect)
        self.collect = SignedBag()

    def is_quiescent(self) -> bool:
        return not self.uqs and self.collect.is_empty()

    def gauges(self) -> Dict[str, int]:
        out = super().gauges()
        out["collect_tuples"] = self.collect.total_count()
        return out

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def pending_state(self) -> Dict[str, Any]:
        state = super().pending_state()
        state["collect"] = self.collect.copy()
        return state

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        super().restore_pending_state(state)
        self.collect = state["collect"].copy()

    def durable_config(self) -> Dict[str, Any]:
        return {"buffer_answers": self.buffer_answers}
