"""Algorithm 5.1 — the conventional incremental algorithm, unmodified.

This is the [BLT86]-style centralized algorithm transplanted verbatim into
the warehousing environment: on update ``U_i`` send ``Q_i = V<U_i>``, on
answer apply ``MV <- MV + A_i`` immediately.  Examples 2 and 3 of the paper
show it is neither convergent nor weakly consistent here; we keep it as the
baseline whose anomalies the test suite and examples demonstrate.
"""

from __future__ import annotations

from typing import List

from repro.core.protocol import WarehouseAlgorithm
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification


class BasicAlgorithm(WarehouseAlgorithm):
    """The anomalous baseline: no compensation, no answer buffering."""

    name = "basic"

    def handle_update(self, notification: UpdateNotification) -> List[QueryRequest]:
        if not self.relevant(notification):
            return []
        update = notification.update
        query = self.view.substitute(update.relation, update.signed_tuple())
        return [self._make_request(query)]

    def handle_answer(self, answer: QueryAnswer) -> List[QueryRequest]:
        self._retire(answer)
        # Non-strict: anomalies can legitimately drive multiplicities
        # negative (e.g. a deletion answered twice); the paper's broken
        # baseline would do the same, and we want to observe the wrong
        # final state rather than crash.
        self.mv.apply_delta(answer.answer, strict=False)
        return []
