"""Section 5.4 — the ECA-Key algorithm (ECA_K).

Applicable when the view projects a key of every base relation.  Then:

1. ``COLLECT`` is a *working copy* of the materialized view, not a delta
   buffer.
2. A delete is handled entirely at the warehouse with ``key-delete`` — no
   query is sent to the source.
3. An insert sends plain ``V<U>`` with **no** compensating queries.
4. Answers merge into ``COLLECT`` with duplicate suppression: a key-
   complete view cannot contain duplicates, so any duplicate is an anomaly
   echo and is dropped.
5. Whenever the UQS is empty after processing an event, the view is
   *replaced* by ``COLLECT`` (which is not reset).

One correction over the paper's description is required for correctness.
Appendix C (Case II(a)) argues a late insert answer cannot resurrect a
deleted tuple because the query "does not see one of the key values of
t" — but when the *deleted tuple is the one the pending insert query is
bound to*, the query carries that key as a constant and its answer still
contains the derived tuples.  Concretely: ``U_j = insert(r2, t)``,
``Q_j = V<t>`` in flight, ``U_d = delete(r2, t)`` processed at the
warehouse (key-delete), then ``A_j`` — evaluated at the source *after*
``U_d`` — arrives and re-adds the tuples ``key-delete`` just removed.
The fix: every key-delete is also recorded as a *filter* against the
queries pending at that moment; tuples matching a recorded filter are
dropped from those queries' answers.  FIFO delivery makes this precise:
an answer evaluated before the delete arrives before the delete's
notification and is never filtered, and an answer evaluated after it must
not contain the key (a later re-insert of the same key sends its own,
unfiltered, query).  Randomized interleaving tests exercise this path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.protocol import WarehouseAlgorithm
from repro.errors import SchemaError
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.relational.bag import SignedBag
from repro.relational.views import View
from repro.warehouse.state import key_delete


class ECAKey(WarehouseAlgorithm):
    """ECA streamlined for views containing every base relation's key.

    Parameters
    ----------
    view, initial:
        As for every :class:`WarehouseAlgorithm`.
    inflight_filter:
        Apply the in-flight key-delete filters (the correction described
        in the module docstring).  ``False`` reproduces the paper's prose
        verbatim — kept only so the tests can demonstrate the gap; do not
        disable in real use.
    """

    name = "eca-key"

    def __init__(
        self,
        view: View,
        initial: Optional[SignedBag] = None,
        inflight_filter: bool = True,
    ) -> None:
        if not view.contains_all_keys():
            raise SchemaError(
                f"ECA-Key requires view {view.name!r} to project a key of "
                f"every base relation"
            )
        super().__init__(view, initial)
        self.inflight_filter = inflight_filter
        # Working copy of MV (rule 1).
        self.collect: SignedBag = self.mv.as_bag()
        # query id -> key-delete filters recorded while it was in flight;
        # each filter is (key output positions, key values).
        self._filters: Dict[int, List[Tuple[Tuple[int, ...], Tuple[object, ...]]]] = {}

    # ------------------------------------------------------------------ #
    # W_up
    # ------------------------------------------------------------------ #

    def handle_update(self, notification: UpdateNotification) -> List[QueryRequest]:
        if not self.relevant(notification):
            return []
        update = notification.update
        if update.is_delete:
            key_delete(self.collect, self.view, update.relation, update.values)
            # Record the deletion against every in-flight query: their
            # answers may be evaluated after this delete yet still carry
            # the deleted key (see module docstring).
            if self.inflight_filter:
                schema = self.view.schema_for(update.relation)
                positions = self.view.key_output_positions(update.relation)
                key = schema.key_of(update.values)
                for query_id in self.uqs:
                    self._filters.setdefault(query_id, []).append((positions, key))
            self._maybe_install()
            return []
        query = self.view.substitute(update.relation, update.signed_tuple())
        return [self._make_request(query)]

    # ------------------------------------------------------------------ #
    # W_ans
    # ------------------------------------------------------------------ #

    def handle_answer(self, answer: QueryAnswer) -> List[QueryRequest]:
        for row, count in answer.answer.items():
            if count <= 0:
                # Cannot happen for V<insert> answers; be defensive so a
                # mis-wired source surfaces loudly in tests.  Validated
                # *before* retiring (RPR012): the failure must leave the
                # UQS and filter tables exactly as they were.
                raise ValueError(
                    f"ECA-Key received a negative answer tuple {row!r}"
                )
        self._retire(answer)
        filters = self._filters.pop(answer.query_id, [])
        # Rule 4: merge, dropping duplicates.  Insert answers are all
        # positive (the bound tuple carries +, base tuples carry +).
        for row, count in answer.answer.items():
            if any(
                tuple(row[i] for i in positions) == key
                for positions, key in filters
            ):
                # The tuple was key-deleted while this query was in
                # flight; the answer saw the deleted key only through its
                # bound tuple.
                continue
            if self.collect.multiplicity(row) == 0:
                self.collect.add(row, 1)
        self._maybe_install()
        return []

    def _maybe_install(self) -> None:
        if not self.uqs:
            self.mv.replace(self.collect)

    def is_quiescent(self) -> bool:
        return not self.uqs

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def pending_state(self) -> Dict[str, Any]:
        state = super().pending_state()
        state["collect"] = self.collect.copy()
        state["filters"] = {
            query_id: list(filters) for query_id, filters in self._filters.items()
        }
        return state

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        super().restore_pending_state(state)
        self.collect = state["collect"].copy()
        self._filters = {
            query_id: [(tuple(positions), tuple(key)) for positions, key in filters]
            for query_id, filters in state["filters"].items()
        }

    def durable_config(self) -> Dict[str, Any]:
        return {"inflight_filter": self.inflight_filter}
