"""Section 5.5 — the ECA-Local algorithm (ECA_L).

The paper sketches ECA_L but leaves the details as future work, noting that
interleaving local updates with in-flight compensated queries "is not
straightforward" and would require buffering updates and splitting query
results.  We implement the sound core of the idea:

- An update is handled **locally** (no source query at all) when it is
  autonomously computable for this view *and* no queries are in flight.
  For SPJ views the autonomously-computable case we support is the
  [BLT86]/[GB94] one the paper itself uses: a deletion whose relation's
  key is projected by the view — ``key-delete`` then identifies exactly
  the derived view tuples.
- Every other update takes the regular ECA path (compensated query).

Requiring an empty UQS side-steps the ordering problem the paper warns
about: with no in-flight queries the view is in a consistent state
``V[ss_{i-1}]``, and the local key-delete moves it directly to
``V[ss_i]``.  When updates are sparse (the common warehouse regime, per
Section 5.6 property 3) every eligible delete is handled locally, matching
ECA_K's behaviour without requiring keys for *all* relations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.eca import ECA
from repro.errors import SchemaError
from repro.messaging.messages import QueryRequest, UpdateNotification
from repro.relational.bag import SignedBag
from repro.relational.views import View
from repro.source.updates import Update


class ECALocal(ECA):
    """ECA plus local handling of autonomously computable deletions."""

    name = "eca-local"

    def __init__(self, view: View, initial: Optional[SignedBag] = None) -> None:
        super().__init__(view, initial)
        #: Count of updates handled without contacting the source.
        self.local_updates_handled = 0

    def is_local_candidate(self, update: Update) -> bool:
        """Autonomously computable for this view, regardless of UQS state."""
        if not update.is_delete:
            return False
        try:
            self.view.key_output_positions(update.relation)
        except SchemaError:
            return False
        return True

    def handle_update(self, notification: UpdateNotification) -> List[QueryRequest]:
        if not self.relevant(notification):
            return []
        update = notification.update
        if self.is_local_candidate(update) and not self.uqs:
            self.mv.key_delete(update.relation, update.values)
            self.local_updates_handled += 1
            return []
        return super().handle_update(notification)

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def pending_state(self) -> Dict[str, Any]:
        state = super().pending_state()
        state["local_updates_handled"] = self.local_updates_handled
        return state

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        super().restore_pending_state(state)
        self.local_updates_handled = state["local_updates_handled"]

    def durable_config(self) -> Dict[str, Any]:
        # buffer_answers is pinned by the constructor, not a ctor parameter.
        return {}
