"""Warehouse view-maintenance algorithms — the paper's contribution.

All algorithms speak the same protocol (:class:`WarehouseAlgorithm`): the
simulation driver feeds them update notifications and query answers, and
they emit query requests and maintain the materialized view.

===========================  =============================================
Algorithm                    Paper reference / properties
===========================  =============================================
:class:`BasicAlgorithm`      Algorithm 5.1 ([BLT86] adapted); *anomalous* —
                             neither convergent nor weakly consistent.
:class:`ECA`                 Algorithm 5.2, Eager Compensating Algorithm;
                             strongly consistent (Appendix B).
:class:`ECAKey`              Section 5.4; requires keys in the view;
                             local deletes, no compensating queries.
:class:`ECALocal`            Section 5.5 (sketch); local handling when
                             safe, compensation otherwise.
:class:`LCA`                 Section 5.3 (sketch), Lazy Compensating
                             Algorithm; complete.
:class:`RecomputeView`       Algorithm D.1 (RV); periodic recomputation.
:class:`StoredCopies`        Section 1.2 (SC); full base-relation copies
                             at the warehouse; complete, no queries.
===========================  =============================================
"""

from repro.core.basic import BasicAlgorithm
from repro.core.batch import BatchECA, DeferredECA
from repro.core.compensation import (
    backdate,
    batch_delta_query,
    pending_compensation,
    staged_compensation,
)
from repro.core.eca import ECA
from repro.core.eca_key import ECAKey
from repro.core.eca_local import ECALocal
from repro.core.lazy import LCA
from repro.core.protocol import WarehouseAlgorithm
from repro.core.recompute import RecomputeView
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.core.stored_copies import StoredCopies

__all__ = [
    "ALGORITHMS",
    "BasicAlgorithm",
    "BatchECA",
    "DeferredECA",
    "ECA",
    "ECAKey",
    "ECALocal",
    "LCA",
    "RecomputeView",
    "StoredCopies",
    "WarehouseAlgorithm",
    "backdate",
    "batch_delta_query",
    "create_algorithm",
    "pending_compensation",
    "staged_compensation",
]
