"""The common protocol all warehouse maintenance algorithms implement.

Every execution kernel delivers source -> warehouse messages to the
algorithm through the *routed* event API: :meth:`WarehouseAlgorithm.on_update`
(the ``W_up`` event), :meth:`WarehouseAlgorithm.on_answer` (``W_ans``) and
:meth:`WarehouseAlgorithm.on_refresh` (deferred timing).  Each call names
the source the message arrived from and returns ``(destination, request)``
pairs for the kernel to ship over the per-source warehouse -> source
channels.  A ``None`` destination means "route by relation owner" — the
sole source in a single-source run.  Per Section 3, each call is atomic.

Single-source algorithm families (ECA, ECA-Key, LCA, RV, SC, ...) do not
care which channel a message arrived on: they implement the unrouted
hooks :meth:`handle_update` / :meth:`handle_answer` / :meth:`handle_refresh`
returning plain request lists, and the base class lifts those into the
routed API.  Multi-source families (Strobe, SWEEP, FragmentingIncremental)
override the routed methods directly and set ``multi_source = True``.

Algorithms own their query-id sequence so that the UQS bookkeeping stays
inside the algorithm; kernels treat query ids as opaque.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple, cast

from repro.errors import ProtocolError
from repro.messaging.messages import (
    QueryAnswer,
    QueryRequest,
    UpdateBatch,
    UpdateNotification,
)
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.relational.views import View
from repro.warehouse.state import MaterializedView

#: What every routed event handler returns: ``(destination, request)``
#: pairs.  ``destination is None`` = route by relation owner.
Routed = List[Tuple[Optional[str], QueryRequest]]


class WarehouseAlgorithm:
    """Base class: query-id bookkeeping plus the routed event API.

    Single-source subclasses implement :meth:`handle_update` and
    :meth:`handle_answer`, calling :meth:`_make_request` to register
    outgoing queries in the unanswered query set (UQS).  Multi-source
    subclasses override :meth:`on_update` / :meth:`on_answer` directly.
    """

    #: Human-readable algorithm name (overridden by subclasses).
    name = "abstract"

    #: Whether the algorithm routes queries to specific sources itself.
    #: Single-source families leave this False and are oblivious to
    #: message origins.
    multi_source = False

    #: Durability codec tag (``repro.durability.codec``); the catalog
    #: overrides this with its composite tag.
    codec_tag = "algo"

    def __init__(self, view: View, initial: Optional[SignedBag] = None) -> None:
        self.view = view
        self.mv = MaterializedView(view, initial)
        self._next_query_id = 1
        #: The unanswered query set: query id -> full query expression.
        self.uqs: Dict[int, Query] = {}
        #: relation name -> owning source name (for routing); bound by the
        #: kernel via :meth:`bind_owners`, or by multi-source constructors.
        self.owners: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Routed event API (called by the execution kernels)
    # ------------------------------------------------------------------ #

    def bind_owners(self, owners: Dict[str, str]) -> None:
        """Tell the algorithm which source owns each relation.

        Kernels call this once before the run starts.  Multi-source
        algorithms take owners at construction time; an explicit mapping
        always wins, so this is a no-op when owners are already set.
        """
        if not self.owners:
            self.owners = dict(owners)

    def on_update(self, source: Optional[str], notification: UpdateNotification) -> Routed:
        """Process ``W_up``: an update notification arrived from ``source``.

        Returns ``(destination, request)`` pairs to ship (possibly none).
        """
        return self._route_all(self.handle_update(notification))

    def on_update_batch(self, source: Optional[str], batch: UpdateBatch) -> Routed:
        """Process a kernel-coalesced run of updates as **one** ``W_up`` event.

        Kernels running with ``batch_k > 1`` drain consecutive
        notifications from one inbox into an
        :class:`~repro.messaging.messages.UpdateBatch` and deliver it here
        atomically — no answer or other update interleaves between the
        members.  The default preserves each family's per-update behavior
        by replaying the members in arrival order inside the one event;
        single-source families that can answer the whole run with a single
        compensating query override :meth:`handle_update_batch` instead.
        """
        if self.multi_source:
            routed: Routed = []
            for notification in batch.notifications:
                routed.extend(self.on_update(source, notification))
            return routed
        return self._route_all(self.handle_update_batch(batch))

    def on_answer(self, source: Optional[str], answer: QueryAnswer) -> Routed:
        """Process ``W_ans``: a query answer arrived from ``source``.

        Returns follow-up ``(destination, request)`` pairs (usually none).
        """
        return self._route_all(self.handle_answer(answer))

    def on_refresh(self) -> Routed:
        """Process a warehouse-client refresh request (deferred timing)."""
        return self._route_all(self.handle_refresh())

    # ------------------------------------------------------------------ #
    # Unrouted hooks (single-source subclasses implement these)
    # ------------------------------------------------------------------ #

    def handle_update(self, notification: UpdateNotification) -> List[QueryRequest]:
        """Single-source ``W_up`` hook; requests are routed by owner."""
        raise NotImplementedError

    def handle_update_batch(self, batch: UpdateBatch) -> List[QueryRequest]:
        """Single-source batched ``W_up`` hook (one atomic event).

        Default: the members one after another, concatenating the
        requests.  ECA overrides this with the paper's ``Q<U1,...,Uk>``
        generalization — one compensating query for the whole run.
        """
        requests: List[QueryRequest] = []
        for notification in batch.notifications:
            requests.extend(self.handle_update(notification))
        return requests

    def handle_answer(self, answer: QueryAnswer) -> List[QueryRequest]:
        """Single-source ``W_ans`` hook; requests are routed by owner."""
        raise NotImplementedError

    def handle_refresh(self) -> List[QueryRequest]:
        """Single-source refresh hook.

        Immediate-update algorithms keep the view current at all times, so
        the default is a no-op; deferred algorithms override this to flush
        buffered updates.
        """
        return []

    # ------------------------------------------------------------------ #
    # Shared plumbing
    # ------------------------------------------------------------------ #

    def _route_all(self, requests: List[QueryRequest]) -> Routed:
        """Lift unrouted requests into the routed API (owner routing)."""
        return [(None, request) for request in requests]

    def _make_request(self, query: Query) -> QueryRequest:
        """Assign a fresh id, record the query in the UQS, build the request."""
        query_id = self._next_query_id
        self._next_query_id += 1
        self.uqs[query_id] = query
        return QueryRequest(query_id, query)

    def _retire(self, answer: QueryAnswer) -> Query:
        """Remove the answered query from the UQS and return it."""
        try:
            return self.uqs.pop(answer.query_id)
        except KeyError:
            raise ProtocolError(
                f"{self.name}: answer for unknown query id {answer.query_id}"
            ) from None

    def uqs_queries(self) -> List[Query]:
        """Pending queries in send order (ids are monotonically increasing)."""
        return [self.uqs[qid] for qid in sorted(self.uqs)]

    # ------------------------------------------------------------------ #
    # Durability hooks (used by repro.durability)
    # ------------------------------------------------------------------ #

    def pending_state(self) -> Dict[str, Any]:
        """Everything beyond the view contents needed to resume this
        algorithm mid-protocol.

        The returned dict holds only codec-encodable values (ints, bags,
        queries, updates, and containers of them).  Subclasses that carry
        extra in-flight state extend the base dict; the pair
        ``restore_pending_state(pending_state())`` must reproduce an
        algorithm that behaves identically on every future event.
        """
        return {
            "next_query_id": self._next_query_id,
            "uqs": dict(self.uqs),
        }

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`pending_state` on a freshly built instance."""
        self._next_query_id = cast(int, state["next_query_id"])
        self.uqs = dict(cast(Dict[int, Query], state["uqs"]))

    def durable_config(self) -> Dict[str, Any]:
        """Constructor options needed to rebuild this instance by name.

        Forwarded to :func:`repro.core.registry.create_algorithm` during
        recovery, so keys must match constructor parameter names.
        """
        return {}

    def pending_requests(self) -> List[Tuple[Optional[str], QueryRequest]]:
        """Requests for every in-flight query, for re-issue after a crash.

        Each entry is ``(destination, request)``; a ``None`` destination
        means "route by owner" (single-source protocol).  The recovered
        warehouse re-sends these — sources answer against their current
        state, which is exactly what a late first answer would have seen,
        so re-asking preserves the algorithms' FIFO-based reasoning.
        """
        return [(None, QueryRequest(qid, self.uqs[qid])) for qid in sorted(self.uqs)]

    def pending_query_ids(self) -> List[int]:
        """Ids of queries awaiting answers (for duplicate-answer dedup)."""
        return sorted(self.uqs)

    def gauges(self) -> Dict[str, int]:
        """Live in-flight sizes for the observability layer.

        Keyed by gauge name; the base protocol reports the UQS size
        (Section 5.2's unanswered query set).  Subclasses extend with
        their family-specific buffers (COLLECT tuples, batched updates,
        ...) — exported as ``repro_algorithm_gauge{gauge=...}`` by
        :class:`repro.obs.instrument.Observability`.
        """
        return {"uqs": len(self.uqs)}

    # ------------------------------------------------------------------ #
    # State inspection
    # ------------------------------------------------------------------ #

    def view_state(self) -> SignedBag:
        """Current materialized view contents."""
        return self.mv.as_bag()

    def dirty_keys(self) -> Set[Tuple[str, Tuple[object, ...]]]:
        """Serving-cache keys dirtied since the last call (and reset).

        Each entry is ``(view_name, cache_key)`` where the cache key is the
        view's serving key projected out of the dirty row — or the whole
        row when :meth:`View.serving_key_positions` finds no usable key.
        Over-invalidation is allowed; missing a changed key is not.
        """
        rows = self.mv.drain_dirty()
        if not rows:
            return set()
        name = self.view.name
        positions = self.view.serving_key_positions()
        if positions is None:
            return {(name, tuple(row)) for row in rows}
        return {(name, tuple(row[i] for i in positions)) for row in rows}

    def is_quiescent(self) -> bool:
        """True when no queries are outstanding and no work is buffered."""
        return not self.uqs

    def relevant(self, notification: UpdateNotification) -> bool:
        """Whether the update touches a relation this view is defined over."""
        return self.view.involves(notification.update.relation)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(view={self.view.name}, uqs={sorted(self.uqs)})"
