"""Section 5.3 — the Lazy Compensating Algorithm (LCA).

The paper defines completeness (every source state is reflected in some
view state) and notes that ECA misses intermediate states while COLLECT
accumulates; LCA is the *complete* variant it sketches: "for each source
update, LCA waits until it has received all query answers (including
compensation) for the update, then applies the changes for that update to
the view".  The full description is "beyond the scope" of the paper, so the
implementation below pins down the details:

- Updates are processed one at a time, in arrival order, from a queue.
  While ``U_i`` is being processed the view stays at ``V[ss_{i-1}]``; when
  ``U_i``'s delta is complete, ``MV <- MV + delta`` moves it to
  ``V[ss_i]``.  The view therefore steps through *every* source state in
  order: strong consistency plus completeness.
- Compensation happens at two moments:

  1. **At send time.**  When ``U_i`` is started, later updates
     ``L = U_{i+1}..U_m`` may already be known (their notifications were
     queued behind ``U_i``), and the source has already executed them.  We
     need ``V<U_i>`` *as of state* ``ss_i``, so we ship the Lemma B.2
     expansion ``D(Q, L) = D(Q, L[1:]) - D(Q<L[0]>, L[1:])`` with
     ``D(Q, []) = Q`` — the alternating sum over prefixes of later
     updates.  (ECA never needs this because it always sends immediately
     on notification; LCA delays sends, so it must back-date them.)
  2. **At arrival time.**  When a new update's notification arrives while
     queries are in flight, FIFO delivery implies the source executed it
     before answering them, so each in-flight query ``Q`` gets a
     compensating query ``-Q<U>`` — exactly ECA's deduction.

- As in ECA, fully-bound terms are evaluated at the warehouse and folded
  straight into the delta rather than shipped.

LCA pays for completeness with more queries and strictly serialized
processing — Section 5.3's remark that it is "less efficient than ECA".
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.compensation import backdate
from repro.core.protocol import WarehouseAlgorithm
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.relational.views import View
from repro.source.updates import Update


class LCA(WarehouseAlgorithm):
    """The Lazy Compensating Algorithm — strongly consistent and complete."""

    name = "lca"

    def __init__(self, view: View, initial: Optional[SignedBag] = None) -> None:
        super().__init__(view, initial)
        #: Updates received but not yet applied, with the number of
        #: relevant updates seen before each (to recover "later" updates).
        self._pending: Deque[Tuple[int, Update]] = deque()
        #: All relevant updates seen, in arrival order.
        self._seen: List[Update] = []
        self._current: Optional[Update] = None
        self._delta = SignedBag()

    # ------------------------------------------------------------------ #
    # W_up
    # ------------------------------------------------------------------ #

    def handle_update(self, notification: UpdateNotification) -> List[QueryRequest]:
        if not self.relevant(notification):
            return []
        update = notification.update
        requests: List[QueryRequest] = []
        # Arrival-time compensation for in-flight queries (all of which
        # belong to the update currently being processed).
        signed = update.signed_tuple()
        for pending_query in self.uqs_queries():
            compensation = -pending_query.substitute(update.relation, signed)
            requests.extend(self._dispatch(compensation))
        self._pending.append((len(self._seen), update))
        self._seen.append(update)
        if self._current is None:
            requests.extend(self._start_next())
        return requests

    # ------------------------------------------------------------------ #
    # W_ans
    # ------------------------------------------------------------------ #

    def handle_answer(self, answer: QueryAnswer) -> List[QueryRequest]:
        self._retire(answer)
        self._delta.add_bag(answer.answer)
        return self._finish_if_done()

    # ------------------------------------------------------------------ #
    # Per-update processing
    # ------------------------------------------------------------------ #

    def _start_next(self) -> List[QueryRequest]:
        requests: List[QueryRequest] = []
        while self._pending and self._current is None:
            index, update = self._pending.popleft()
            self._current = update
            self._delta = SignedBag()
            base = self.view.substitute(update.relation, update.signed_tuple())
            later = self._seen[index + 1 :]
            query = backdate(base, later)
            requests.extend(self._dispatch(query))
            requests.extend(self._finish_if_done())
        return requests

    def _dispatch(self, query: Query) -> List[QueryRequest]:
        local = query.fully_bound_terms()
        remote = query.source_terms()
        if not local.is_empty():
            self._delta.add_bag(local.evaluate({}))
        if remote.is_empty():
            return []
        return [self._make_request(remote)]

    def _finish_if_done(self) -> List[QueryRequest]:
        if self._current is None or self.uqs:
            return []
        self.mv.apply_delta(self._delta)
        self._delta = SignedBag()
        self._current = None
        return self._start_next()

    def is_quiescent(self) -> bool:
        return not self.uqs and self._current is None and not self._pending

    def gauges(self) -> Dict[str, int]:
        out = super().gauges()
        out["queued_updates"] = len(self._pending) + (
            1 if self._current is not None else 0
        )
        return out

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def pending_state(self) -> Dict[str, Any]:
        state = super().pending_state()
        state["queued"] = [(index, update) for index, update in self._pending]
        state["seen"] = list(self._seen)
        state["current"] = self._current
        # The in-progress delta goes through the canonical pair form so
        # the persisted payload is independent of dict insertion order.
        state["delta"] = self._delta.to_pairs()
        return state

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        super().restore_pending_state(state)
        self._pending = deque(
            (index, update) for index, update in state["queued"]
        )
        self._seen = list(state["seen"])
        self._current = state["current"]
        self._delta = SignedBag.from_pairs(state["delta"])
