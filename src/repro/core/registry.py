"""Algorithm registry: construct maintenance algorithms by name.

One registry covers both families: the single-source algorithms from the
paper's Sections 4-6 and the multi-source algorithms (Strobe, SWEEP,
FragmentingIncremental, multi-source SC) from the Section 7 follow-ups.
All of them speak the routed :class:`~repro.core.protocol.WarehouseAlgorithm`
protocol, so every kernel — and WAL recovery — rebuilds any of them by
name via :func:`create_algorithm`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, cast

from repro.core.basic import BasicAlgorithm
from repro.core.batch import BatchECA, DeferredECA
from repro.core.eca import ECA
from repro.core.eca_key import ECAKey
from repro.core.eca_local import ECALocal
from repro.core.lazy import LCA
from repro.core.protocol import WarehouseAlgorithm
from repro.core.recompute import RecomputeView
from repro.core.stored_copies import StoredCopies
from repro.multisource.algorithms import (
    FragmentingIncremental,
    MultiSourceStoredCopies,
)
from repro.multisource.strobe import StrobeStyle
from repro.multisource.sweep import SweepStyle
from repro.relational.bag import SignedBag
from repro.relational.views import View

#: Name -> algorithm class, for every algorithm the paper discusses.
ALGORITHMS: Dict[str, type] = {
    BasicAlgorithm.name: BasicAlgorithm,
    BatchECA.name: BatchECA,
    DeferredECA.name: DeferredECA,
    ECA.name: ECA,
    ECAKey.name: ECAKey,
    ECALocal.name: ECALocal,
    LCA.name: LCA,
    RecomputeView.name: RecomputeView,
    StoredCopies.name: StoredCopies,
    FragmentingIncremental.name: FragmentingIncremental,
    MultiSourceStoredCopies.name: MultiSourceStoredCopies,
    StrobeStyle.name: StrobeStyle,
    SweepStyle.name: SweepStyle,
}


def create_algorithm(
    name: str,
    view: View,
    initial: Optional[SignedBag] = None,
    **options: Any,
) -> WarehouseAlgorithm:
    """Instantiate the named algorithm.

    ``options`` are forwarded to the constructor by keyword (e.g.
    ``period=5`` for ``"recompute"``, ``owners={...}`` for ``"strobe"``).
    """
    try:
        cls = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None
    return cast(WarehouseAlgorithm, cls(view, initial=initial, **options))
