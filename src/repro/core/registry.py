"""Algorithm registry: construct maintenance algorithms by name."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.basic import BasicAlgorithm
from repro.core.batch import BatchECA, DeferredECA
from repro.core.eca import ECA
from repro.core.eca_key import ECAKey
from repro.core.eca_local import ECALocal
from repro.core.lazy import LCA
from repro.core.protocol import WarehouseAlgorithm
from repro.core.recompute import RecomputeView
from repro.core.stored_copies import StoredCopies
from repro.relational.bag import SignedBag
from repro.relational.views import View

#: Name -> algorithm class, for every algorithm the paper discusses.
ALGORITHMS: Dict[str, type] = {
    BasicAlgorithm.name: BasicAlgorithm,
    BatchECA.name: BatchECA,
    DeferredECA.name: DeferredECA,
    ECA.name: ECA,
    ECAKey.name: ECAKey,
    ECALocal.name: ECALocal,
    LCA.name: LCA,
    RecomputeView.name: RecomputeView,
    StoredCopies.name: StoredCopies,
}


def create_algorithm(
    name: str,
    view: View,
    initial: Optional[SignedBag] = None,
    **options: object,
) -> WarehouseAlgorithm:
    """Instantiate the named algorithm.

    ``options`` are forwarded to the constructor (e.g. ``period=5`` for
    ``"recompute"``, ``buffer_answers=False`` for ``"eca"``).
    """
    try:
        cls = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None
    return cls(view, initial, **options)
