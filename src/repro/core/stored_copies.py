"""Section 1.2 — the Stored-Copies strategy (SC).

The warehouse keeps an up-to-date copy of every base relation involved in
the view.  An update notification is applied to the local copies and the
incremental query ``V<U>`` is evaluated *locally* — no query is ever sent
to the source, so no anomaly can arise.

SC is strongly consistent and complete (the view steps through every
source state), at the storage cost the paper calls out: full copies of all
base relations, kept current on every update.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.protocol import WarehouseAlgorithm
from repro.errors import UpdateError
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.relational.bag import SignedBag
from repro.relational.views import View


class StoredCopies(WarehouseAlgorithm):
    """View maintenance against warehouse-resident base relation copies.

    Parameters
    ----------
    view:
        The maintained view.
    initial:
        Initial view contents.
    initial_copies:
        Initial contents of the base relation copies; must match the
        source's initial state for the maintained view to be correct.
    """

    name = "stored-copies"

    def __init__(
        self,
        view: View,
        initial: Optional[SignedBag] = None,
        initial_copies: Optional[Dict[str, SignedBag]] = None,
    ) -> None:
        super().__init__(view, initial)
        self.copies: Dict[str, SignedBag] = {
            name: SignedBag() for name in view.relation_names
        }
        if initial_copies:
            for relation, bag in initial_copies.items():
                if relation in self.copies:
                    self.copies[relation] = bag.copy()

    def handle_update(self, notification: UpdateNotification) -> List[QueryRequest]:
        if not self.relevant(notification):
            return []
        update = notification.update
        copy = self.copies[update.relation]
        if update.is_insert:
            copy.add(update.values, 1)
        else:
            if copy.multiplicity(update.values) <= 0:
                raise UpdateError(
                    f"stored copy of {update.relation!r} has no tuple "
                    f"{update.values!r} to delete — copies out of sync"
                )
            copy.add(update.values, -1)
        # Evaluate V<U> against the (already updated) local copies.  The
        # updated relation's operand is bound to the update's signed tuple,
        # so the evaluation never consults the modified relation itself.
        delta_query = self.view.substitute(update.relation, update.signed_tuple())
        self.mv.apply_delta(delta_query.evaluate(self.copies))
        return []

    def handle_answer(self, answer: QueryAnswer) -> List[QueryRequest]:
        # SC never sends queries, so an answer is a protocol violation.
        self._retire(answer)
        return []

    def storage_cost(self) -> int:
        """Total tuples held in base-relation copies (SC's storage price)."""
        return sum(bag.total_count() for bag in self.copies.values())

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def pending_state(self) -> Dict[str, Any]:
        state = super().pending_state()
        state["copies"] = {name: bag.copy() for name, bag in self.copies.items()}
        return state

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        super().restore_pending_state(state)
        self.copies = {name: bag.copy() for name, bag in state["copies"].items()}
