"""Batched and deferred ECA — Section 7's first future-work item, built.

The paper: "We will consider how ECA can be extended to handle a set of
updates at once ... since we expect that in practice many source updates
will be 'batched,' this extension should result in a very useful
performance enhancement."  And Section 2 notes the algorithms apply to
deferred and periodic maintenance timing "with little or no modification".

Both live here, as one algorithm with two flush triggers:

- :class:`BatchECA` buffers incoming update notifications and, every
  ``batch_size`` updates, ships a *single* compensated query for the whole
  batch: ``sum_j D(V<U_j>, rest-of-batch)`` (the Lemma B.2 backdating that
  makes each per-update delta read as of its own source state), plus a
  staged correction for every query that was in flight while buffered
  updates arrived.
- :class:`DeferredECA` flushes only when a warehouse client *reads* the
  view (a :class:`~repro.messaging.messages.RefreshRequest`; place
  :data:`repro.simulation.driver.REFRESH` markers in the workload) —
  deferred maintenance.  Issue refreshes at fixed intervals and you have
  periodic maintenance.

Message economics: k updates cost ``2 * ceil(k / batch_size)`` messages
instead of ECA's ``2k``, interpolating between ECA (``batch_size=1``) and
a single incremental round-trip per refresh.

Compensation bookkeeping (where this genuinely extends ECA): because
compensation is *deferred* to flush time, a contaminated query may already
have been answered and left the UQS.  The algorithm therefore remembers,
for every query sent, how many currently-buffered updates arrived while it
was in flight (always a prefix of the buffer, by FIFO), and at flush time
ships :func:`~repro.core.compensation.staged_compensation` for each —
whether or not the query is still pending.  The view installs only when
the UQS is empty and no such un-flushed contamination exists.

Convergence for a finite run requires a final flush — end workloads with a
``REFRESH`` marker, pick a ``batch_size`` dividing the update count, or
call :meth:`BatchECA.flush`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.compensation import batch_delta_query, staged_compensation
from repro.core.protocol import WarehouseAlgorithm
from repro.messaging.messages import QueryAnswer, QueryRequest, UpdateNotification
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.relational.views import View
from repro.source.updates import Update


class BatchECA(WarehouseAlgorithm):
    """ECA with warehouse-side update batching.

    Parameters
    ----------
    view, initial:
        As for every :class:`WarehouseAlgorithm`.
    batch_size:
        Flush automatically once this many relevant updates are buffered;
        ``None`` disables automatic flushing (refresh-triggered only).
        ``batch_size=1`` behaves like ECA, one query per update.
    """

    name = "batch-eca"

    def __init__(
        self,
        view: View,
        initial: Optional[SignedBag] = None,
        batch_size: Optional[int] = 4,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1 or None, got {batch_size}")
        super().__init__(view, initial)
        self.batch_size = batch_size
        self.collect = SignedBag()
        self._buffer: List[Update] = []
        #: query id -> full query expression, kept past retirement while
        #: un-flushed contamination refers to it.
        self._sent: Dict[int, Query] = {}
        #: query id -> how many of the *current* buffer's updates arrived
        #: while the query was in flight (a prefix of the buffer).
        self._seen: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # W_up
    # ------------------------------------------------------------------ #

    def handle_update(self, notification: UpdateNotification) -> List[QueryRequest]:
        if not self.relevant(notification):
            return []
        self._buffer.append(notification.update)
        for query_id in self.uqs:
            self._seen[query_id] = self._seen.get(query_id, 0) + 1
        if self.batch_size is not None and len(self._buffer) >= self.batch_size:
            return self.flush()
        return []

    # ------------------------------------------------------------------ #
    # Flush
    # ------------------------------------------------------------------ #

    def flush(self) -> List[QueryRequest]:
        """Ship one compensated query covering every buffered update."""
        if not self._buffer:
            return []
        batch = self._buffer
        self._buffer = []
        query = batch_delta_query(self.view, batch)
        for query_id, count in self._seen.items():
            if count:
                query = query + staged_compensation(
                    self._sent[query_id], batch, count
                )
        self._seen.clear()
        # Expressions for already-answered queries are no longer needed.
        for query_id in list(self._sent):
            if query_id not in self.uqs:
                del self._sent[query_id]
        return self._dispatch(query)

    def _dispatch(self, query: Query) -> List[QueryRequest]:
        local = query.fully_bound_terms()
        remote = query.source_terms()
        if not local.is_empty():
            self.collect.add_bag(local.evaluate({}))
        if remote.is_empty():
            self._maybe_install()
            return []
        request = self._make_request(remote)
        self._sent[request.query_id] = remote
        return [request]

    # ------------------------------------------------------------------ #
    # W_ans / refresh
    # ------------------------------------------------------------------ #

    def handle_answer(self, answer: QueryAnswer) -> List[QueryRequest]:
        self._retire(answer)
        self.collect.add_bag(answer.answer)
        self._maybe_install()
        return []

    def handle_refresh(self) -> List[QueryRequest]:
        return self.flush()

    def _maybe_install(self) -> None:
        if self.uqs:
            return
        if any(count for count in self._seen.values()):
            # Some already-received answer saw buffered updates whose
            # compensation has not shipped yet; installing now would
            # expose an invalid state.
            return
        if self.collect.is_empty():
            return
        self.mv.apply_delta(self.collect)
        self.collect = SignedBag()

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    def buffered_updates(self) -> int:
        return len(self._buffer)

    def is_quiescent(self) -> bool:
        return not self.uqs and not self._buffer and self.collect.is_empty()

    def gauges(self) -> Dict[str, int]:
        out = super().gauges()
        out["collect_tuples"] = self.collect.total_count()
        out["buffered_updates"] = len(self._buffer)
        return out

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def pending_state(self) -> Dict[str, Any]:
        state = super().pending_state()
        state["collect"] = self.collect.copy()
        state["buffer"] = list(self._buffer)
        state["sent"] = dict(self._sent)
        state["seen"] = dict(self._seen)
        return state

    def restore_pending_state(self, state: Dict[str, Any]) -> None:
        super().restore_pending_state(state)
        self.collect = state["collect"].copy()
        self._buffer = list(state["buffer"])
        self._sent = dict(state["sent"])
        self._seen = dict(state["seen"])

    def durable_config(self) -> Dict[str, Any]:
        return {"batch_size": self.batch_size}


class DeferredECA(BatchECA):
    """Deferred maintenance: flush only when the view is read."""

    name = "deferred-eca"

    def __init__(self, view: View, initial: Optional[SignedBag] = None) -> None:
        super().__init__(view, initial, batch_size=None)

    def durable_config(self) -> Dict[str, Any]:
        # batch_size is pinned by the constructor, not a ctor parameter.
        return {}
