"""Interleaving control for the simulation.

The relative timing of source updates, query evaluations, and warehouse
message processing is exactly what creates or avoids anomalies, and is the
axis along which the paper defines its best and worst cases:

- *best case for ECA* — "the updates are sufficiently spaced so that each
  query is processed before the next update occurs at the source"
  (:class:`BestCaseSchedule`);
- *worst case for ECA* — "all updates occur before the first query arrives
  at the source" (:class:`WorstCaseSchedule`).

Schedules choose among the three primitive actions offered by the driver:
``"update"``, ``"answer"``, ``"warehouse"`` (see
:mod:`repro.simulation.driver`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import SimulationError

UPDATE = "update"
ANSWER = "answer"
WAREHOUSE = "warehouse"

ACTIONS = (UPDATE, ANSWER, WAREHOUSE)


class Schedule:
    """Strategy interface: pick the next action among the available ones."""

    def choose(self, available: Sequence[str]) -> str:
        raise NotImplementedError


class PrioritySchedule(Schedule):
    """Always run the highest-priority available action."""

    #: Subclasses set this to an ordering of ACTIONS, most preferred first.
    priority: Sequence[str] = ACTIONS

    def choose(self, available: Sequence[str]) -> str:
        for action in self.priority:
            if action in available:
                return action
        raise SimulationError(f"no available action among {available!r}")


class BestCaseSchedule(PrioritySchedule):
    """Low update frequency: drain all processing before the next update.

    Every query is answered (and its answer applied) before the next
    source update executes, so ECA never needs compensating queries and
    behaves exactly like the original incremental algorithm (Section 5.6,
    property 3).
    """

    priority = (WAREHOUSE, ANSWER, UPDATE)


class WorstCaseSchedule(PrioritySchedule):
    """High update frequency: all updates execute before any query answer.

    The warehouse still processes its incoming messages promptly (sending
    compensated queries), but the source defers query evaluation until the
    workload is exhausted — every query then sees the final base state and
    every preceding update must be compensated.
    """

    priority = (UPDATE, WAREHOUSE, ANSWER)


class EagerSourceSchedule(PrioritySchedule):
    """The source answers pending queries before executing more updates.

    Unlike :class:`BestCaseSchedule` the warehouse lags behind: answers
    and notifications pile up in its inbox.  Useful as an additional
    interleaving family for property tests.
    """

    priority = (ANSWER, UPDATE, WAREHOUSE)


class RandomSchedule(Schedule):
    """Choose uniformly among available actions (seeded, reproducible)."""

    def __init__(self, seed: int = 0, weights: Optional[dict] = None) -> None:
        self._rng = random.Random(seed)
        self._weights = dict(weights) if weights else {}

    def choose(self, available: Sequence[str]) -> str:
        if not available:
            raise SimulationError("no available action")
        if self._weights:
            weights = [self._weights.get(a, 1.0) for a in available]
            return self._rng.choices(list(available), weights=weights, k=1)[0]
        return self._rng.choice(list(available))


class ScriptedSchedule(Schedule):
    """Follow an explicit action list — used to replay the paper's examples.

    Raises :class:`SimulationError` when the scripted action is not
    currently available (a mis-transcribed event order) or when the script
    runs out while work remains.
    """

    def __init__(self, actions: Sequence[str]) -> None:
        unknown = [a for a in actions if a not in ACTIONS]
        if unknown:
            raise SimulationError(f"unknown scripted actions: {unknown!r}")
        self._actions: List[str] = list(actions)
        self._cursor = 0

    def choose(self, available: Sequence[str]) -> str:
        if self._cursor >= len(self._actions):
            raise SimulationError(
                f"script exhausted after {self._cursor} actions but work "
                f"remains; available: {available!r}"
            )
        action = self._actions[self._cursor]
        self._cursor += 1
        if action not in available:
            raise SimulationError(
                f"scripted action {action!r} (step {self._cursor}) is not "
                f"available; available: {available!r}"
            )
        return action

    def exhausted(self) -> bool:
        return self._cursor >= len(self._actions)
