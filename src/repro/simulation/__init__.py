"""Discrete-event simulation of the source/warehouse system.

The driver owns the two FIFO channels and exposes three primitive actions,
mirroring the paper's event types:

- ``update``  — the source executes the next workload update and sends the
  notification (``S_up``);
- ``answer``  — the source receives the oldest pending query, evaluates it
  on its *current* state, and sends the answer (``S_qu``);
- ``warehouse`` — the warehouse receives its oldest message and processes
  it (``W_up`` or ``W_ans``), possibly emitting queries.

A :class:`~repro.simulation.schedules.Schedule` picks which available
action runs next; this is the single knob that produces the paper's
best case (every query answered before the next update), worst case (all
updates precede all query evaluations), the scripted event orders of the
paper's examples, and randomized interleavings for property tests.
"""

from repro.simulation.driver import REFRESH, Simulation, run_simulation
from repro.simulation.schedules import (
    BestCaseSchedule,
    RandomSchedule,
    Schedule,
    ScriptedSchedule,
    WorstCaseSchedule,
)
from repro.simulation.trace import EventRecord, Trace

__all__ = [
    "BestCaseSchedule",
    "REFRESH",
    "EventRecord",
    "RandomSchedule",
    "Schedule",
    "ScriptedSchedule",
    "Simulation",
    "Trace",
    "WorstCaseSchedule",
    "run_simulation",
]
