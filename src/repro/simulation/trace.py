"""Execution traces: the raw material for correctness checking.

A :class:`Trace` records the sequence of events, the source state after
every ``S_up`` (the paper's ``ss_0 .. ss_p``), and the warehouse view state
after every warehouse event (``ws_0 .. ws_q``).  The consistency checker
replays ``V[ss_i]`` over these snapshots to classify a run against the
correctness hierarchy of Section 3.1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.relational.bag import SignedBag

# Event kinds, named after the paper's event types.  C_ref/W_ref extend
# the model with warehouse-client refresh requests (deferred timing);
# W_crash/W_rec mark process-fault injection and WAL recovery (these two
# never carry a view snapshot change the checker would classify).
S_UP = "S_up"
S_QU = "S_qu"
W_UP = "W_up"
W_ANS = "W_ans"
C_REF = "C_ref"
W_REF = "W_ref"
W_CRASH = "W_crash"
W_REC = "W_rec"


class EventRecord:
    """One event, in global occurrence order."""

    __slots__ = ("seq", "kind", "detail")

    def __init__(self, seq: int, kind: str, detail: str) -> None:
        self.seq = seq
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:
        return f"#{self.seq} {self.kind}: {self.detail}"


class Trace:
    """Recorded history of one simulation run."""

    def __init__(self) -> None:
        self.events: List[EventRecord] = []
        #: ``source_states[i]`` is ``ss_i`` — the base relations after the
        #: i-th update (``ss_0`` is the initial state).
        self.source_states: List[Dict[str, SignedBag]] = []
        #: ``view_states[j]`` is the materialized view after the j-th
        #: warehouse event (``view_states[0]`` is the initial view).
        self.view_states: List[SignedBag] = []
        self._seq = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record_event(self, kind: str, detail: str) -> None:
        self.events.append(EventRecord(self._seq, kind, detail))
        self._seq += 1

    def record_source_state(self, state: Dict[str, SignedBag]) -> None:
        self.source_states.append(state)

    def record_view_state(self, view: SignedBag) -> None:
        self.view_states.append(view)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    @property
    def final_source_state(self) -> Dict[str, SignedBag]:
        return self.source_states[-1]

    @property
    def final_view_state(self) -> SignedBag:
        return self.view_states[-1]

    def events_of_kind(self, kind: str) -> List[EventRecord]:
        return [e for e in self.events if e.kind == kind]

    def update_count(self) -> int:
        return len(self.events_of_kind(S_UP))

    def describe(self, max_events: Optional[int] = None) -> str:
        """Human-readable event listing (for examples and debugging)."""
        events = self.events if max_events is None else self.events[:max_events]
        lines = [repr(e) for e in events]
        if max_events is not None and len(self.events) > max_events:
            lines.append(f"... ({len(self.events) - max_events} more events)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Trace(events={len(self.events)}, source_states="
            f"{len(self.source_states)}, view_states={len(self.view_states)})"
        )
