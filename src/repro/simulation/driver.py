"""The single-source simulation driver — a facade over the shared kernel.

Historically this module owned its own message pump; it is now a thin
compatibility layer over :class:`repro.kernel.sync.SyncKernel` (one
source named ``"source"``), keeping the legacy action names (``update`` /
``answer`` / ``warehouse``), the sole-channel attributes
(:attr:`Simulation.to_warehouse` / :attr:`Simulation.to_source`), and the
historical unqualified trace detail strings.  All policy lives in the
algorithm (what to send, how to update the view) and the schedule (when
things happen); the kernel enforces the paper's structural assumptions:
events are atomic, and messages on each channel are delivered and
processed in order.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Sequence, Tuple

logger = logging.getLogger("repro.simulation")

from repro.core.protocol import WarehouseAlgorithm
from repro.errors import SimulationError
from repro.kernel.sync import REFRESH, SyncKernel
from repro.messaging.channel import FifoChannel
from repro.simulation.schedules import ANSWER, Schedule, UPDATE, WAREHOUSE
from repro.simulation.trace import Trace
from repro.source.base import Source
from repro.source.updates import Update

__all__ = ["REFRESH", "Simulation", "run_simulation"]

#: The kernel's name for the facade's sole source.
_SOLE = "source"


class Simulation(SyncKernel):
    """One source, one warehouse algorithm, one workload.

    Parameters
    ----------
    source:
        The source database (already loaded with initial data).
    algorithm:
        The warehouse maintenance algorithm (already initialized with the
        view's initial contents).
    workload:
        The updates the source will execute, in order.
    recorder:
        Optional cost recorder (see :mod:`repro.costmodel.counters`); must
        provide ``record_request``, ``record_answer`` and
        ``record_evaluation`` methods.
    """

    def __init__(
        self,
        source: Source,
        algorithm: WarehouseAlgorithm,
        workload: Sequence[Update],
        recorder: Optional[object] = None,
    ) -> None:
        super().__init__(
            {_SOLE: source}, algorithm, workload, recorder=recorder, qualified=False
        )
        self.source = source

    # Sole-channel views over the kernel's per-source channel maps.
    @property
    def to_warehouse(self) -> FifoChannel:
        """The source -> warehouse channel."""
        return self.inbound[_SOLE]

    @property
    def to_source(self) -> FifoChannel:
        """The warehouse -> source channel."""
        return self.outbound[_SOLE]

    # Legacy action-name mapping (``update`` / ``answer`` / ``warehouse``).
    def available_actions(self) -> List[str]:
        actions: List[str] = []
        if self._updates:
            actions.append(UPDATE)
        if not self.to_source.is_empty():
            actions.append(ANSWER)
        if not self.to_warehouse.is_empty():
            actions.append(WAREHOUSE)
        return actions

    def step(self, action: str) -> None:
        if action == UPDATE:
            self._do_update()
        elif action == ANSWER:
            self._do_answer(_SOLE)
        elif action == WAREHOUSE:
            self._do_warehouse(_SOLE)
        else:
            raise SimulationError(f"unknown action {action!r}")

    def run(self, schedule: Schedule, max_steps: int = 1_000_000) -> Trace:
        """Run to quiescence under ``schedule``; returns the trace."""
        return super().run(schedule, max_steps=max_steps)


def run_simulation(
    source: Source,
    algorithm: WarehouseAlgorithm,
    workload: Sequence[Update],
    schedule: Schedule,
    recorder: Optional[object] = None,
) -> Tuple[Trace, Optional[object]]:
    """Convenience wrapper: build a :class:`Simulation`, run it, return both
    the trace and the recorder (if any)."""
    simulation = Simulation(source, algorithm, workload, recorder)
    trace = simulation.run(schedule)
    return trace, recorder
