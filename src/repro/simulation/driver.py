"""The simulation driver: wires source, channels, algorithm, and schedule.

The driver is deliberately dumb — all policy lives in the algorithm (what
to send, how to update the view) and the schedule (when things happen).
It enforces the paper's structural assumptions: events are atomic, and
messages on each channel are delivered and processed in order.
"""

from __future__ import annotations

import logging
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

logger = logging.getLogger("repro.simulation")

from repro.core.protocol import WarehouseAlgorithm
from repro.errors import SimulationError
from repro.messaging.channel import FifoChannel
from repro.messaging.messages import (
    QueryAnswer,
    QueryRequest,
    RefreshRequest,
    UpdateNotification,
)
from repro.simulation.schedules import ANSWER, Schedule, UPDATE, WAREHOUSE
from repro.simulation.trace import C_REF, S_QU, S_UP, Trace, W_ANS, W_REF, W_UP
from repro.source.base import Source
from repro.source.updates import Update


class _RefreshMarker:
    """Workload sentinel: a warehouse client reads the view here.

    Place :data:`REFRESH` in a workload to model deferred/periodic
    maintenance: the driver injects a :class:`RefreshRequest` into the
    warehouse's inbox instead of executing a source update.
    """

    def __repr__(self) -> str:
        return "REFRESH"


#: The refresh sentinel (a singleton).
REFRESH = _RefreshMarker()


class Simulation:
    """One source, one warehouse algorithm, one workload.

    Parameters
    ----------
    source:
        The source database (already loaded with initial data).
    algorithm:
        The warehouse maintenance algorithm (already initialized with the
        view's initial contents).
    workload:
        The updates the source will execute, in order.
    recorder:
        Optional cost recorder (see :mod:`repro.costmodel.counters`); must
        provide ``record_request``, ``record_answer`` and
        ``record_evaluation`` methods.
    """

    def __init__(
        self,
        source: Source,
        algorithm: WarehouseAlgorithm,
        workload: Sequence[Update],
        recorder: Optional[object] = None,
    ) -> None:
        self.source = source
        self.algorithm = algorithm
        self.recorder = recorder
        self._updates: Deque[Update] = deque(workload)
        # A recorder that can size messages doubles as the channel sizer,
        # so the B metric is also observable on the wire (sent_bytes).
        sizer = getattr(recorder, "message_size", None)
        self.to_warehouse = FifoChannel("source->warehouse", sizer=sizer)
        self.to_source = FifoChannel("warehouse->source", sizer=sizer)
        self.trace = Trace()
        self._serial = 0
        self._refresh_serial = 0
        # ss_0 and ws_0: the initial states.
        self.trace.record_source_state(source.snapshot())
        self.trace.record_view_state(algorithm.view_state())

    # ------------------------------------------------------------------ #
    # Action availability
    # ------------------------------------------------------------------ #

    def available_actions(self) -> List[str]:
        actions: List[str] = []
        if self._updates:
            actions.append(UPDATE)
        if not self.to_source.is_empty():
            actions.append(ANSWER)
        if not self.to_warehouse.is_empty():
            actions.append(WAREHOUSE)
        return actions

    def is_done(self) -> bool:
        return not self.available_actions()

    # ------------------------------------------------------------------ #
    # Primitive actions
    # ------------------------------------------------------------------ #

    def step(self, action: str) -> None:
        if action == UPDATE:
            self._do_update()
        elif action == ANSWER:
            self._do_answer()
        elif action == WAREHOUSE:
            self._do_warehouse()
        else:
            raise SimulationError(f"unknown action {action!r}")

    def _do_update(self) -> None:
        """``S_up``: execute the next update, then notify the warehouse.

        A :data:`REFRESH` workload item is a warehouse-client read rather
        than a source update: it skips the source entirely and enqueues a
        refresh request on the warehouse's inbox.
        """
        if not self._updates:
            raise SimulationError("no workload updates remain")
        update = self._updates.popleft()
        if update is REFRESH:
            self._refresh_serial += 1
            self.trace.record_event(C_REF, f"refresh #{self._refresh_serial}")
            logger.debug("client refresh #%d requested", self._refresh_serial)
            self.to_warehouse.send(RefreshRequest(self._refresh_serial))
            return
        self.source.apply_update(update)
        logger.debug("source executed %r", update)
        self._serial += 1
        self.trace.record_event(S_UP, f"U{self._serial} = {update!r}")
        self.trace.record_source_state(self.source.snapshot())
        self.to_warehouse.send(UpdateNotification(update, self._serial))

    def _do_answer(self) -> None:
        """``S_qu``: receive the oldest query, evaluate, send the answer."""
        message = self.to_source.receive()
        if not isinstance(message, QueryRequest):
            raise SimulationError(
                f"source received non-query message: {message!r}"
            )
        answer = self.source.evaluate(message.query)
        logger.debug(
            "source answered Q%d with %d tuple(s)",
            message.query_id,
            answer.total_count(),
        )
        if self.recorder is not None:
            self.recorder.record_evaluation(message.query, self.source)
        self.trace.record_event(
            S_QU, f"Q{message.query_id} -> {answer.total_count()} tuple(s)"
        )
        reply = QueryAnswer(message.query_id, answer)
        if self.recorder is not None:
            self.recorder.record_answer(reply)
        self.to_warehouse.send(reply)

    def _do_warehouse(self) -> None:
        """``W_up`` or ``W_ans``: process the oldest incoming message."""
        message = self.to_warehouse.receive()
        if isinstance(message, UpdateNotification):
            requests = self.algorithm.on_update(message)
            self.trace.record_event(
                W_UP,
                f"U{message.serial} processed, {len(requests)} query(ies) sent",
            )
        elif isinstance(message, QueryAnswer):
            requests = self.algorithm.on_answer(message)
            self.trace.record_event(
                W_ANS,
                f"A for Q{message.query_id} applied, "
                f"{len(requests)} follow-up query(ies)",
            )
        elif isinstance(message, RefreshRequest):
            requests = self.algorithm.on_refresh()
            self.trace.record_event(
                W_REF,
                f"refresh #{message.serial} processed, "
                f"{len(requests)} query(ies) sent",
            )
        else:
            raise SimulationError(f"warehouse received unknown message: {message!r}")
        for request in requests:
            if self.recorder is not None:
                self.recorder.record_request(request)
            self.to_source.send(request)
        self.trace.record_view_state(self.algorithm.view_state())

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #

    def run(self, schedule: Schedule, max_steps: int = 1_000_000) -> Trace:
        """Run to quiescence under ``schedule``; returns the trace."""
        steps = 0
        while True:
            available = self.available_actions()
            if not available:
                break
            if steps >= max_steps:
                raise SimulationError(
                    f"simulation exceeded {max_steps} steps without quiescing"
                )
            self.step(schedule.choose(available))
            steps += 1
        if not self.algorithm.is_quiescent():
            # Channels are drained and the workload is exhausted, yet the
            # algorithm still holds buffered work: a deadlocked algorithm
            # (or an RV with a partial period, which callers opt into by
            # choosing a non-dividing period).
            if self.algorithm.uqs:
                raise SimulationError(
                    f"algorithm {self.algorithm.name!r} still has pending "
                    f"queries after quiescence: {sorted(self.algorithm.uqs)}"
                )
        return self.trace


def run_simulation(
    source: Source,
    algorithm: WarehouseAlgorithm,
    workload: Sequence[Update],
    schedule: Schedule,
    recorder: Optional[object] = None,
) -> Tuple[Trace, Optional[object]]:
    """Convenience wrapper: build a :class:`Simulation`, run it, return both
    the trace and the recorder (if any)."""
    simulation = Simulation(source, algorithm, workload, recorder)
    trace = simulation.run(schedule)
    return trace, recorder
