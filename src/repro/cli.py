"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``
    Print Table 1 and the Section 6.1 message-count analysis.
``figures``
    Regenerate the analytic series of Figures 6.2-6.5.
``measure``
    Run the simulated (measured) counterparts of the cost curves.
``scenario``
    Replay one of the paper's worked examples event by event.
``audit``
    Run the correctness-hierarchy audit over randomized workloads.
``crossovers``
    Print the headline crossover points the figures claim.
``runtime``
    Run the concurrent asyncio runtime: N sources x M clients, optional
    fault-injecting transport, consistency verdict and metrics.  With
    ``--trace-out`` / ``--metrics-out`` / ``--prom-out`` the run also
    exports its causal span trace and metrics registry.
``trace``
    Render a recorded trace file as a causal timeline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.costmodel.parameters import PaperParameters


def _add_param_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cardinality", "-C", type=int, default=100, help="relation cardinality C")
    parser.add_argument("--tuple-bytes", "-S", type=int, default=4, help="bytes per projected tuple S")
    parser.add_argument("--selectivity", type=float, default=0.5, help="selection factor sigma")
    parser.add_argument("--join-factor", "-J", type=int, default=4, help="join factor J")
    parser.add_argument("--block-factor", "-K", type=int, default=20, help="tuples per block K")


def _params(args: argparse.Namespace) -> PaperParameters:
    return PaperParameters(
        cardinality=args.cardinality,
        tuple_bytes=args.tuple_bytes,
        selectivity=args.selectivity,
        join_factor=args.join_factor,
        block_factor=args.block_factor,
    )


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_table
    from repro.experiments.tables import messages_table, parameter_table

    print(render_table("Table 1 — model parameters", parameter_table(_params(args))))
    print()
    print(
        render_table(
            "Section 6.1 — messages",
            messages_table(k_values=(1, 10, 100), periods=(1, 10)),
        )
    )
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.figures import ALL_FIGURES
    from repro.experiments.report import render_series

    params = _params(args)
    wanted = args.figure
    for name, builder in ALL_FIGURES.items():
        if wanted != "all" and not name.endswith(wanted):
            continue
        series = builder(params)
        x_key = "C" if name == "figure-6.2" else "k"
        print(render_series(name, series, x_key=x_key))
        print()
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    from repro.experiments.measured import measure_bytes_series, measure_io_series
    from repro.experiments.report import render_series

    params = _params(args)
    k_values = tuple(args.k)
    if args.metric == "bytes":
        series = measure_bytes_series(params, k_values=k_values, source_kind=args.source)
        title = "Measured B versus k"
    else:
        scenario = 1 if args.metric == "io1" else 2
        series = measure_io_series(
            scenario, params, k_values=k_values, source_kind=args.source
        )
        title = f"Measured IO versus k, Scenario {scenario}"
    print(render_series(title, series))
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from repro.consistency import check_trace
    from repro.experiments.runner import run_scenario
    from repro.relational.engine import evaluate_view
    from repro.workloads.paper_examples import PAPER_EXAMPLES

    if args.list or args.name is None:
        for name, scenario in sorted(PAPER_EXAMPLES.items()):
            print(f"{name:<12} {scenario.paper_ref:<28} algorithm={scenario.algorithm}")
        return 0
    try:
        scenario = PAPER_EXAMPLES[args.name]
    except KeyError:
        print(f"unknown scenario {args.name!r}; use --list", file=sys.stderr)
        return 2
    trace, warehouse = run_scenario(
        scenario, algorithm=args.algorithm, source_kind=args.source
    )
    print(f"{scenario.paper_ref} — {scenario.description}\n")
    print(trace.describe())
    correct = evaluate_view(scenario.view, trace.final_source_state)
    report = check_trace(scenario.view, trace)
    print(f"\nfinal view:   {sorted(warehouse.mv.rows())}")
    print(f"correct view: {sorted(correct.expand_rows())}")
    print(f"correctness:  {report.level()}")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from collections import defaultdict

    from repro.consistency import check_trace
    from repro.core.registry import ALGORITHMS, create_algorithm
    from repro.core.stored_copies import StoredCopies
    from repro.experiments.report import render_table
    from repro.relational.engine import evaluate_view
    from repro.relational.schema import RelationSchema
    from repro.relational.views import View
    from repro.simulation.driver import Simulation
    from repro.simulation.schedules import (
        BestCaseSchedule,
        RandomSchedule,
        WorstCaseSchedule,
    )
    from repro.source.memory import MemorySource
    from repro.workloads.random_gen import random_workload

    schemas = [
        RelationSchema("r1", ("W", "X"), key=("W",)),
        RelationSchema("r2", ("X", "Y"), key=("Y",)),
    ]
    initial = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
    view = View.natural_join("V", schemas, ["W", "Y"])
    names = [
        n
        for n in sorted(ALGORITHMS)
        if n not in ("recompute", "deferred-eca")
        and not getattr(ALGORITHMS[n], "multi_source", False)
    ]
    levels = defaultdict(set)
    for seed in range(args.workloads):
        workload = random_workload(
            schemas, args.updates, seed=seed, initial=initial, respect_keys=True
        )
        schedules = [BestCaseSchedule(), WorstCaseSchedule(), RandomSchedule(seed)]
        for schedule in schedules:
            for name in names:
                source = MemorySource(schemas, initial)
                initial_view = evaluate_view(view, source.snapshot())
                if name == "stored-copies":
                    algo = StoredCopies(view, initial_view, source.snapshot())
                elif name == "batch-eca":
                    size = max(1, args.updates // 3)
                    while args.updates % size:
                        size -= 1
                    algo = create_algorithm(name, view, initial_view, batch_size=size)
                else:
                    algo = create_algorithm(name, view, initial_view)
                trace = Simulation(source, algo, list(workload)).run(schedule)
                levels[name].add(check_trace(view, trace).level())
    rows = [
        {"algorithm": name, "observed levels": ", ".join(sorted(levels[name]))}
        for name in names
    ]
    print(
        render_table(
            f"Correctness audit ({args.workloads} workloads x 3 schedules)", rows
        )
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.full_report import generate_report

    text = generate_report(_params(args), quick=args.quick)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def cmd_staleness(args: argparse.Namespace) -> int:
    from repro.consistency import check_trace, staleness_profile
    from repro.core.batch import BatchECA
    from repro.core.eca import ECA
    from repro.core.recompute import RecomputeView
    from repro.costmodel.counters import CostRecorder
    from repro.experiments.report import render_table
    from repro.relational.engine import evaluate_view
    from repro.relational.schema import RelationSchema
    from repro.relational.views import View
    from repro.simulation.driver import Simulation
    from repro.simulation.schedules import BestCaseSchedule
    from repro.source.memory import MemorySource
    from repro.workloads.random_gen import random_workload

    schemas = [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]
    initial = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
    k = args.updates
    policies = [("ECA (immediate)", lambda v, iv: ECA(v, iv))]
    for s in args.periods:
        policies.append(
            (f"RV s={s}", lambda v, iv, s=s: RecomputeView(v, iv, period=s))
        )
    for b in args.batches:
        policies.append(
            (f"Batch b={b}", lambda v, iv, b=b: BatchECA(v, iv, batch_size=b))
        )
    rows = []
    for label, factory in policies:
        view = View.natural_join("V", schemas, ["W", "Y"])
        source = MemorySource(schemas, initial)
        warehouse = factory(view, evaluate_view(view, source.snapshot()))
        recorder = CostRecorder()
        workload = random_workload(schemas, k, seed=args.seed, initial=initial)
        trace = Simulation(source, warehouse, workload, recorder).run(
            BestCaseSchedule()
        )
        profile = staleness_profile(view, trace)
        rows.append(
            {
                "policy": label,
                "messages": recorder.messages,
                "mean lag": round(profile.mean_lag, 2),
                "max lag": profile.max_lag,
                "level": check_trace(view, trace).level(),
            }
        )
    print(render_table(f"Freshness vs messages (k={k})", rows))
    return 0


def _fanout_topology(n_sources: int, updates: int, seed: int, algorithm: str = "eca"):
    """The Section 7 fan-out: N autonomous sources, one join view each.

    Source ``s<i>`` owns ``s<i>r1(W, X)`` / ``s<i>r2(X, Y)`` and view
    ``V<i>`` joins them; the chosen per-view ``algorithm`` maintains each
    view separately.  Shared by ``repro runtime`` and ``repro freshness``
    so both commands measure the same topology.
    """
    from repro.core.registry import create_algorithm
    from repro.relational.engine import evaluate_view
    from repro.relational.schema import RelationSchema
    from repro.relational.views import View
    from repro.source.memory import MemorySource
    from repro.workloads.random_gen import random_workload

    sources = {}
    algorithms = {}
    workload = []
    for index in range(n_sources):
        prefix = f"s{index}"
        schemas = [
            RelationSchema(f"{prefix}r1", ("W", "X"), key=("W",)),
            RelationSchema(f"{prefix}r2", ("X", "Y"), key=("Y",)),
        ]
        initial = {
            f"{prefix}r1": [(1, 2), (2, 3)],
            f"{prefix}r2": [(2, 5), (3, 6)],
        }
        source = MemorySource(schemas, initial)
        sources[prefix] = source
        view = View.natural_join(f"V{index}", schemas, ["W", "Y"])
        algorithms[f"V{index}"] = create_algorithm(
            algorithm, view, evaluate_view(view, source.snapshot())
        )
        workload.extend(
            random_workload(
                schemas,
                updates,
                seed=seed + index,
                initial=initial,
                respect_keys=True,
            )
        )
    return sources, algorithms, workload


def cmd_runtime(args: argparse.Namespace) -> int:
    from repro.consistency import check_trace
    from repro.core.registry import ALGORITHMS, create_algorithm
    from repro.experiments.report import render_table
    from repro.multisource.consistency import cut_report
    from repro.relational.engine import evaluate_view
    from repro.relational.schema import RelationSchema
    from repro.relational.views import View
    from repro.runtime import FaultPlan, run_concurrent
    from repro.source.memory import MemorySource
    from repro.warehouse.catalog import WarehouseCatalog
    from repro.workloads.random_gen import random_workload

    multi = getattr(ALGORITHMS[args.algorithm], "multi_source", False)
    if multi and args.share_compensation == "on":
        print(
            "--share-compensation dedupes compensating queries across the "
            "catalog's member views; the multi-source topology maintains a "
            "single spanning view, so there is nothing to share — drop the "
            "flag or pick a single-source algorithm",
            file=sys.stderr,
        )
        return 2
    if multi and args.shards:
        print(
            "--shards places whole views on shards; a view spanning several "
            "sources cannot be partitioned — drop --shards or pick a "
            "single-source algorithm",
            file=sys.stderr,
        )
        return 2
    sources = {}
    workload = []
    spanning_view = None
    if multi:
        # Topology: one view spanning all N sources as a join chain —
        # source s<i> owns relation s<i>r(C<i>, C<i+1>).  The projection
        # keeps every key column, so the Strobe family's key-completeness
        # requirement holds for any N.
        schemas = []
        for index in range(args.sources):
            name = f"s{index}"
            relation = f"{name}r"
            key = ("C0",) if index == 0 else (f"C{index + 1}",)
            schema = RelationSchema(
                relation, (f"C{index}", f"C{index + 1}"), key=key
            )
            schemas.append(schema)
            initial = {relation: [(1, 1), (2, 2)]}
            sources[name] = MemorySource([schema], initial)
            workload.extend(
                random_workload(
                    [schema],
                    args.updates,
                    seed=args.seed + index,
                    initial=initial,
                    respect_keys=True,
                    domain=3,
                )
            )
        # Key columns double as join columns from 3 sources up, so the
        # projection must qualify them (bare "C2" is ambiguous between
        # s1r and s2r).
        projection = [f"{schemas[0].name}.C0"] + [
            f"{schema.name}.{schema.key[0]}" for schema in schemas[1:]
        ]
        spanning_view = View.natural_join("V", schemas, projection)
        owners = {f"s{index}r": f"s{index}" for index in range(args.sources)}
        snapshot = {}
        for source in sources.values():
            snapshot.update(source.snapshot())
        options = {"owners": owners}
        if args.algorithm == "multi-stored-copies":
            options["initial_copies"] = snapshot
        warehouse = create_algorithm(
            args.algorithm,
            spanning_view,
            evaluate_view(spanning_view, snapshot),
            **options,
        )
        checkable = spanning_view
    else:
        # Topology: N autonomous sources, each owning a two-relation join
        # view maintained by the chosen algorithm (Section 7: "ECA is
        # simply applied to each view separately").
        sources, algorithms, workload = _fanout_topology(
            args.sources, args.updates, args.seed, args.algorithm
        )
        share = args.share_compensation == "on"
        if len(algorithms) == 1 and not args.shards and not share:
            warehouse = next(iter(algorithms.values()))
            checkable = warehouse.view
        else:
            # Sharded runs always go through a catalog: shards merge into
            # one tagged global view, so the oracle must be tagged too.
            warehouse = WarehouseCatalog(algorithms, share_compensation=share)
            checkable = warehouse

    faults = None
    if args.faults:
        faults = FaultPlan(
            latency=args.latency,
            jitter=args.jitter,
            drop_rate=args.drop_rate,
        )

    cache = None
    read_workload = None
    if args.cache or args.read_workload:
        from repro.serving import ServingCache, reader_for
        from repro.workloads.random_gen import zipf_read_workload

        if args.cache:
            cache = ServingCache(
                capacity=args.cache_capacity,
                staleness_bound=args.staleness_bound,
                policy=args.cache_policy,
            )
        if args.read_workload:
            kind, _, rest = args.read_workload.partition(":")
            theta = None
            if kind == "zipf":
                try:
                    theta = float(rest) if rest else 1.0
                except ValueError:
                    theta = None
            if theta is None or theta < 0:
                print(
                    f"unknown read workload {args.read_workload!r} "
                    "(expected zipf:THETA with THETA >= 0, e.g. zipf:1.2)",
                    file=sys.stderr,
                )
                return 2
            # Key universe: serving keys of the initial view contents.
            # Updates add and remove keys, so some reads will miss — that
            # is representative of a real read mix, not a bug.
            keys = reader_for(warehouse).current_keys()
            count = max(1, args.updates * args.sources * 2)
            read_workload = zipf_read_workload(
                keys, count, theta=theta, seed=args.seed
            )

    obs = None
    if args.trace_out or args.metrics_out or args.prom_out:
        from repro.obs import Observability

        obs = Observability(
            trace=bool(args.trace_out), sharded=bool(args.shards)
        )

    crash = None
    wal_dir = args.wal_dir
    temp_wal = None
    if args.crash:
        from repro.durability.crash import CrashPolicy

        crash = CrashPolicy(
            mode=args.crash_mode,
            at=args.crash_at,
            skip=args.crash_skip,
            max_crashes=args.max_crashes,
            drop_sends=args.drop_sends,
            seed=args.seed,
        )
        if wal_dir is None:
            # Crash recovery needs a WAL; default to a throwaway one.
            import tempfile

            temp_wal = tempfile.TemporaryDirectory(prefix="repro-wal-")
            wal_dir = temp_wal.name
    try:
        result = run_concurrent(
            sources,
            warehouse,
            workload,
            clients=args.clients,
            client_reads=args.reads,
            faults=faults,
            seed=args.seed,
            wal_dir=wal_dir,
            wal_fsync=args.wal_fsync,
            snapshot_every=args.snapshot_every,
            crash=crash,
            obs=obs,
            shards=args.shards,
            partitioner=args.partitioner,
            crash_shard=args.crash_shard,
            cache=cache,
            read_workload=read_workload,
            batch_k=args.batch_k,
            wire_codec=args.wire_codec,
        )
    finally:
        if temp_wal is not None:
            temp_wal.cleanup()
    if multi:
        # A spanning view has no global source-state sequence; classify
        # against monotone consistent cuts of the per-source histories.
        report = cut_report(
            spanning_view,
            result.per_source_states,
            result.trace.view_states,
            result.final_view,
        )
    elif args.shards:
        # Shards interleave independently, so the merged trace likewise
        # has no single source-state sequence; the catalog stands in as
        # the tagged oracle over consistent cuts.
        report = cut_report(
            checkable,
            result.per_source_states,
            result.trace.view_states,
            result.final_view,
        )
    else:
        report = check_trace(checkable, result.trace)

    print(render_table("Per-actor metrics", result.metrics_table()))
    print()
    stat_rows = [
        dict(channel=name, **stats.as_dict())
        for name, stats in sorted(result.channel_stats.items())
    ]
    print(render_table("Channel statistics", stat_rows))
    print()
    print(f"updates executed:   {result.updates}")
    print(f"warehouse events:   {len(result.trace.events)}")
    if result.shard_info is not None:
        info = result.shard_info
        placement = ", ".join(
            f"{name}->s{shard}" for name, shard in sorted(info["assignment"].items())
        )
        print(
            f"sharding:           {info['shards']} shard(s), "
            f"{info['partitioner']} partitioner ({placement})"
        )
    print(f"consistency:        {report.level()}")
    print(f"quiesce latency:    {result.quiesce_latency:.2f} (virtual)")
    print(f"virtual duration:   {result.virtual_duration:.2f}")
    print(f"wall time:          {result.wall_seconds * 1000:.1f} ms")
    print(f"throughput:         {result.throughput():.0f} updates/s")
    if result.wal_stats is not None:
        print(
            f"WAL:                {result.wal_stats['records']} record(s), "
            f"{result.wal_stats['snapshots']} snapshot(s), "
            f"last lsn {result.wal_stats['last_lsn']}"
        )
    for crash_info in result.crashes:
        print(
            f"crash @ event {crash_info['event_index']} "
            f"(mode={crash_info['mode']}, drop_sends={crash_info['drop_sends']}): "
            f"recovered from snapshot lsn {crash_info['snapshot_lsn']} + "
            f"{crash_info['replayed']} replayed, "
            f"{crash_info['reissued']} re-issued"
        )
    if args.crash and not result.crashes:
        print("crash policy never fired (no eligible event boundary)")
    if not multi and args.share_compensation == "on":
        if args.shards and result.shard_info is not None:
            stats = [
                catalog.shared_query_stats()
                for catalog in result.shard_info["algorithms"].values()
            ]
            issued = sum(s[0] for s in stats)
            saved = sum(s[1] for s in stats)
        else:
            issued, saved = warehouse.shared_query_stats()
        print(
            f"shared compensation: {issued} distinct quer{'y' if issued == 1 else 'ies'} "
            f"issued, {saved} member quer{'y' if saved == 1 else 'ies'} absorbed"
        )
    if result.serving is not None:
        serving = result.serving
        if "hit_rate" in serving:
            print(
                f"serving cache:      {serving['reads']} read(s), "
                f"hit rate {serving['hit_rate']:.2f}, "
                f"{serving['stale_served']} stale-served "
                f"(max lag {serving['max_served_lag']}, "
                f"bound {serving['staleness_bound']}), "
                f"{serving['invalidations']} invalidation(s), "
                f"{serving['backend_reads']} backend read(s)"
            )
        else:
            print(
                f"serving reads:      {serving['reads']} read(s), "
                f"{serving['backend_reads']} backend read(s) (cache off)"
            )
    if obs is not None:
        from repro.obs import write_metrics_json, write_prometheus, write_trace_jsonl

        if args.trace_out:
            written = write_trace_jsonl(obs.tracer, args.trace_out)
            dropped = obs.tracer.dropped
            suffix = f" ({dropped} evicted)" if dropped else ""
            print(f"trace:              {written} span(s) -> {args.trace_out}{suffix}")
        if args.metrics_out:
            meta = {
                "command": "runtime",
                "algorithm": args.algorithm,
                "sources": args.sources,
                "clients": args.clients,
                "seed": args.seed,
            }
            write_metrics_json(obs.registry, args.metrics_out, meta=meta)
            print(f"metrics:            -> {args.metrics_out}")
        if args.prom_out:
            write_prometheus(obs.registry, args.prom_out)
            print(f"prometheus:         -> {args.prom_out}")
    if args.require_consistent and not (report.consistent and report.convergent):
        print(
            f"FAIL: run is {report.level()}, --require-consistent demands "
            "a consistent and convergent execution",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_freshness(args: argparse.Namespace) -> int:
    """Run a cached read-serving workload and report per-view freshness as JSON."""
    import json

    from repro.runtime import run_concurrent
    from repro.serving import ServingCache, reader_for
    from repro.warehouse.catalog import WarehouseCatalog
    from repro.workloads.random_gen import zipf_read_workload

    sources, algorithms, workload = _fanout_topology(
        args.sources, args.updates, args.seed
    )
    share = args.share_compensation == "on"
    warehouse = WarehouseCatalog(algorithms, share_compensation=share)
    cache = ServingCache(
        capacity=args.cache_capacity, staleness_bound=args.staleness_bound
    )
    keys = reader_for(warehouse).current_keys()
    reads = zipf_read_workload(
        keys,
        max(1, args.reads * args.sources),
        theta=args.theta,
        seed=args.seed,
    )
    result = run_concurrent(
        sources,
        warehouse,
        workload,
        clients=0,
        seed=args.seed,
        cache=cache,
        read_workload=reads,
    )
    serving = dict(result.serving or {})
    issued, saved = warehouse.shared_query_stats()
    report = {
        "views": sorted(algorithms),
        "updates": result.updates,
        "staleness_bound": args.staleness_bound,
        "share_compensation": args.share_compensation,
        "shared_queries": {"issued": issued, "saved": saved},
        "freshness": serving.pop("freshness", {}),
        "serving": serving,
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import read_trace_jsonl, render_timeline

    try:
        spans = read_trace_jsonl(args.path)
    except OSError as exc:
        print(f"cannot read {args.path!r}: {exc}", file=sys.stderr)
        return 2
    if args.kind:
        wanted = set(args.kind)
        spans = [s for s in spans if s.get("kind") in wanted]
    if not spans:
        print("(no spans)")
        return 0
    print(render_timeline(spans, limit=args.limit))
    return 0


def cmd_crossovers(args: argparse.Namespace) -> int:
    from repro.costmodel import analytic

    params = _params(args)
    pairs = [
        ("bytes  ECA best  vs recompute-once", analytic.bytes_eca_best, analytic.bytes_rv_best),
        ("bytes  ECA worst vs recompute-once", analytic.bytes_eca_worst, analytic.bytes_rv_best),
        ("IO s1  ECA best  vs recompute-once", analytic.io1_eca_best, analytic.io1_rv_best),
        ("IO s2  ECA best  vs recompute-once", analytic.io2_eca_best, analytic.io2_rv_best),
        ("IO s2  ECA worst vs recompute-once", analytic.io2_eca_worst, analytic.io2_rv_best),
    ]
    for label, eca_curve, rv_curve in pairs:
        k = analytic.crossover_k(
            lambda p, kk: eca_curve(p, kk), lambda p, kk: rv_curve(p), params
        )
        print(f"{label}: k = {k}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.__main__ import run_lint

    return run_lint(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'View Maintenance in a Warehousing Environment' "
            "(SIGMOD 1995)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tables", help="Table 1 and message counts")
    _add_param_arguments(p)
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser("figures", help="analytic series of Figures 6.2-6.5")
    _add_param_arguments(p)
    p.add_argument("--figure", default="all", choices=["all", "6.2", "6.3", "6.4", "6.5"])
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("measure", help="measured cost curves from full simulation")
    _add_param_arguments(p)
    p.add_argument("--metric", default="bytes", choices=["bytes", "io1", "io2"])
    p.add_argument("--k", type=int, nargs="+", default=[3, 6, 12, 24])
    p.add_argument("--source", default="memory", choices=["memory", "sqlite"])
    p.set_defaults(func=cmd_measure)

    p = sub.add_parser("scenario", help="replay a worked example from the paper")
    p.add_argument("name", nargs="?", help="scenario name (see --list)")
    p.add_argument("--list", action="store_true", help="list scenarios")
    p.add_argument("--algorithm", help="override the scenario's algorithm")
    p.add_argument("--source", default="memory", choices=["memory", "sqlite"])
    p.set_defaults(func=cmd_scenario)

    p = sub.add_parser("audit", help="correctness-hierarchy audit")
    p.add_argument("--workloads", type=int, default=6)
    p.add_argument("--updates", type=int, default=9)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("report", help="regenerate the full experimental record")
    _add_param_arguments(p)
    p.add_argument("--output", "-o", help="write to a file instead of stdout")
    p.add_argument("--quick", action="store_true", help="skip measured runs")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("staleness", help="freshness vs message-cost frontier")
    p.add_argument("--updates", type=int, default=24)
    p.add_argument("--periods", type=int, nargs="+", default=[1, 6, 24])
    p.add_argument("--batches", type=int, nargs="+", default=[4, 12])
    p.add_argument("--seed", type=int, default=9)
    p.set_defaults(func=cmd_staleness)

    p = sub.add_parser(
        "runtime", help="concurrent asyncio runtime: N sources x M clients"
    )
    from repro.core.registry import ALGORITHMS

    p.add_argument("--sources", type=int, default=2, help="number of sources")
    p.add_argument("--clients", type=int, default=4, help="view-reading clients")
    p.add_argument("--updates", type=int, default=12, help="updates per source")
    p.add_argument("--reads", type=int, default=4, help="reads per client")
    p.add_argument(
        "--algorithm",
        default="eca",
        choices=sorted(ALGORITHMS),
        help="per-view algorithm (registry name)",
    )
    p.add_argument("--seed", type=int, default=0, help="master determinism seed")
    p.add_argument(
        "--batch-k",
        type=int,
        default=1,
        help="coalesce up to k consecutive pending update notifications "
        "into one atomic W_up event answered by a single compensating "
        "query (1 = legacy per-update protocol)",
    )
    from repro.messaging.wire import WIRE_CODECS

    p.add_argument(
        "--wire-codec",
        default="none",
        choices=WIRE_CODECS,
        help="charge sent_bytes with real framed message bytes: 'frame' "
        "(length-prefixed canonical JSON), 'zlib'/'zstd' (compressed); "
        "'none' keeps the abstract sizer estimate",
    )
    p.add_argument(
        "--faults", action="store_true", help="run over the fault-injecting transport"
    )
    p.add_argument("--latency", type=float, default=1.0, help="base latency (virtual)")
    p.add_argument("--jitter", type=float, default=3.0, help="uniform jitter bound")
    p.add_argument("--drop-rate", type=float, default=0.2, help="per-attempt drop rate")
    p.add_argument(
        "--wal-dir", help="persist warehouse events to a write-ahead log here"
    )
    p.add_argument(
        "--wal-fsync", action="store_true", help="fsync every WAL append"
    )
    p.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        help="compacting-snapshot cadence in WAL records",
    )
    p.add_argument(
        "--crash",
        action="store_true",
        help="kill and recover the warehouse mid-run (uses a temp WAL "
        "unless --wal-dir is given)",
    )
    p.add_argument(
        "--crash-mode",
        default="mid-uqs",
        choices=["mid-uqs", "after-answer", "event"],
        help="when the crash policy fires",
    )
    p.add_argument(
        "--crash-at", type=int, help="event index for --crash-mode=event"
    )
    p.add_argument(
        "--crash-skip",
        type=int,
        help="eligible boundaries to skip before crashing (default: from seed)",
    )
    p.add_argument(
        "--max-crashes", type=int, default=1, help="crashes injected per run"
    )
    p.add_argument(
        "--drop-sends",
        action="store_true",
        help="crash before the event's outgoing queries reach the transport",
    )
    p.add_argument(
        "--shards",
        type=int,
        help="partition the warehouse over N shards behind a router actor",
    )
    p.add_argument(
        "--partitioner",
        default="hash",
        choices=["hash", "range"],
        help="view-to-shard placement strategy for --shards",
    )
    p.add_argument(
        "--crash-shard",
        type=int,
        default=0,
        help="shard id the --crash policy attaches to in a sharded run",
    )
    p.add_argument(
        "--cache",
        action="store_true",
        help="front the warehouse with the bounded-staleness serving cache",
    )
    p.add_argument(
        "--staleness-bound",
        type=int,
        default=0,
        help="invalidations a cached entry may lag before a forced reload "
        "(0 = reload on first invalidation, i.e. always-fresh serving)",
    )
    p.add_argument(
        "--cache-capacity", type=int, default=64, help="serving-cache entry budget"
    )
    p.add_argument(
        "--cache-policy",
        default="lru",
        choices=["lru", "fifo"],
        help="serving-cache eviction policy",
    )
    p.add_argument(
        "--read-workload",
        metavar="SPEC",
        help="drive a read client against the serving tier; SPEC is "
        "zipf:THETA (theta 0 = uniform, larger = hotter head)",
    )
    p.add_argument(
        "--share-compensation",
        default="off",
        choices=["on", "off"],
        help="dedupe structurally-identical compensating queries across "
        "the catalog's member views: each atomic event ships one query "
        "per distinct term signature and fans the answer back to every "
        "subscribed view ('off' preserves the independent per-view "
        "fan-out byte for byte)",
    )
    p.add_argument(
        "--require-consistent",
        action="store_true",
        help="exit nonzero unless the run is consistent and convergent",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the causal span trace as JSON lines (view with 'repro trace')",
    )
    p.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the metrics registry (counters/gauges/histograms) as JSON",
    )
    p.add_argument(
        "--prom-out",
        metavar="PATH",
        help="write the metrics registry in Prometheus text format",
    )
    p.set_defaults(func=cmd_runtime)

    p = sub.add_parser(
        "freshness",
        help="per-view serving freshness report (JSON) from a cached read run",
    )
    p.add_argument("--sources", type=int, default=2, help="number of sources")
    p.add_argument("--updates", type=int, default=12, help="updates per source")
    p.add_argument("--reads", type=int, default=16, help="serving reads per source")
    p.add_argument("--seed", type=int, default=0, help="master determinism seed")
    p.add_argument(
        "--staleness-bound",
        type=int,
        default=1,
        help="invalidations a cached entry may lag before a forced reload",
    )
    p.add_argument(
        "--cache-capacity", type=int, default=64, help="serving-cache entry budget"
    )
    p.add_argument(
        "--theta", type=float, default=1.0, help="zipf skew of the read mix"
    )
    p.add_argument(
        "--share-compensation",
        default="off",
        choices=["on", "off"],
        help="dedupe structurally-identical compensating queries across views",
    )
    p.set_defaults(func=cmd_freshness)

    p = sub.add_parser(
        "trace", help="render a recorded trace file as a causal timeline"
    )
    p.add_argument("path", help="trace file written by runtime --trace-out")
    p.add_argument(
        "--limit", type=int, help="show only the first N spans (by start time)"
    )
    p.add_argument(
        "--kind",
        action="append",
        help="filter by span kind (repeatable: update, wh_event, query, ...)",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "lint", help="AST-based invariant checker (see docs/ANALYSIS.md)"
    )
    # Shared with ``python -m repro.analysis`` so the two entry points
    # accept the same flags and cannot drift apart.
    from repro.analysis.__main__ import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("crossovers", help="headline crossover points")
    _add_param_arguments(p)
    p.set_defaults(func=cmd_crossovers)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
