"""Unified observability: causal tracing + metrics + exporters.

The paper's anomalies are ordering bugs, and its evaluation is a set of
cost metrics (Section 6's M/B/IO); this package makes both first-class
at runtime:

- :mod:`repro.obs.trace` — spans with message-causality links (the
  update → query → answer → install chains), in a bounded ring buffer;
- :mod:`repro.obs.metrics` — a labelled counter/gauge/histogram registry
  unifying ``ActorMetrics``, channel fault counters, the cost model, and
  WAL accounting, with Prometheus-text and JSON exporters;
- :mod:`repro.obs.instrument` — the :class:`Observability` hook bundle
  the runtime and durability layers call (pass ``obs=`` to
  :func:`repro.runtime.run_concurrent`);
- :mod:`repro.obs.export` — trace JSONL read/write, metrics JSON,
  Prometheus text, and the causal-timeline renderer behind
  ``python -m repro trace``.

See ``docs/OBSERVABILITY.md`` for the trace model, the metric name
tables, exporter formats, and measured overhead.
"""

from repro.obs.export import (
    read_trace_jsonl,
    render_timeline,
    write_metrics_json,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.instrument import Observability
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    Registry,
    ingest_mapping,
)
from repro.obs.trace import CAUSES, COMPENSATES, INSTALLS, RECOVERS, Span, Tracer

__all__ = [
    "CAUSES",
    "COMPENSATES",
    "Counter",
    "Gauge",
    "Histogram",
    "INSTALLS",
    "MetricError",
    "Observability",
    "RECOVERS",
    "Registry",
    "Span",
    "Tracer",
    "ingest_mapping",
    "read_trace_jsonl",
    "render_timeline",
    "write_metrics_json",
    "write_prometheus",
    "write_trace_jsonl",
]
