"""Exporters: trace JSON-lines, metrics JSON / Prometheus text, timeline.

File formats
------------
**Trace (``*.jsonl``)** — one span per line, exactly
:meth:`repro.obs.trace.Span.as_dict`:

.. code-block:: json

    {"span_id": 7, "name": "wh.query", "kind": "query", "start": 2.0,
     "end": 2.0, "parent": 6, "links": [["compensates", 3]],
     "attrs": {"query_id": 2, "destination": "source"}}

**Metrics (``*.json``)** — ``{"metrics": Registry.as_json(), "meta": ...}``.

**Prometheus text** — ``Registry.render_prometheus()``, suitable for a
file-based textfile collector or a scrape stub.

The timeline renderer (used by ``python -m repro trace``) prints spans in
start order with their causal edges resolved to human-readable references
— the update→query→answer→install chains become visually explicit.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.metrics import Registry
from repro.obs.trace import Span, Tracer

SpanLike = Union[Span, Dict[str, object]]


def _span_dicts(spans: Union[Tracer, Sequence[SpanLike]]) -> List[Dict[str, object]]:
    if isinstance(spans, Tracer):
        spans = spans.spans()
    out = []
    for span in spans:
        out.append(span.as_dict() if isinstance(span, Span) else dict(span))
    return out


def write_trace_jsonl(spans: Union[Tracer, Sequence[SpanLike]], path: str) -> int:
    """Write spans as JSON lines; returns the number written."""
    rows = _span_dicts(spans)
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def read_trace_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a trace file back into span dicts (blank lines skipped)."""
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def write_metrics_json(
    registry: Registry, path: str, meta: Optional[Dict[str, object]] = None
) -> None:
    """Write the registry dump (plus optional run metadata) as JSON."""
    payload = {"meta": dict(meta or {}), "metrics": registry.as_json()}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_prometheus(registry: Registry, path: str) -> None:
    """Write the Prometheus text exposition of the registry."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.render_prometheus())


# --------------------------------------------------------------------- #
# Timeline rendering (`python -m repro trace`)
# --------------------------------------------------------------------- #


def _reference(span: Dict[str, object]) -> str:
    """Short human reference for a linked span (name + salient attr)."""
    attrs = span.get("attrs") or {}
    for key in ("serial", "query_id", "event_index"):
        if key in attrs:
            return f"{span['name']}[{key}={attrs[key]}]"
    return str(span["name"])


def render_timeline(
    spans: Sequence[Dict[str, object]], limit: Optional[int] = None
) -> str:
    """Render a recorded trace as a causal timeline.

    One line per span in start order: virtual time, duration, the span
    name indented under its parent, salient attributes, and each causal
    link spelled out (``<- causes source.update[serial=2]``).
    """
    by_id = {span["span_id"]: span for span in spans}
    ordered = sorted(spans, key=lambda s: (s["start"], s["span_id"]))
    if limit is not None:
        ordered = ordered[:limit]

    def depth(span: Dict[str, object]) -> int:
        count, seen = 0, set()
        while span.get("parent") in by_id and span["span_id"] not in seen:
            seen.add(span["span_id"])
            span = by_id[span["parent"]]
            count += 1
        return count

    lines = []
    for span in ordered:
        start = span["start"]
        end = span.get("end")
        duration = "" if end is None or end == start else f" +{end - start:g}"
        indent = "  " * depth(span)
        attrs = span.get("attrs") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        edges = []
        for relation, target in span.get("links") or ():
            if target in by_id:
                edges.append(f"<- {relation} {_reference(by_id[target])}")
            else:
                edges.append(f"<- {relation} #{target}")
        edge_text = ("  " + "  ".join(edges)) if edges else ""
        lines.append(
            f"t={start:<8g}{duration:<8} {indent}{span['name']}"
            + (f"  {attr_text}" if attr_text else "")
            + edge_text
        )
    if limit is not None and len(spans) > limit:
        lines.append(f"... ({len(spans) - limit} more span(s))")
    return "\n".join(lines)
