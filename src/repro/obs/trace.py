"""Causal tracing: spans, message-causality links, and a ring buffer.

The paper's anomalies (Examples 2-3) are *ordering* bugs: understanding
why ECA sends a compensating query requires seeing the causal chain

    source update  ->  warehouse event  ->  query  ->  answer  ->  install

as one linked structure, not as four disconnected log lines.  The tracer
records every step as a :class:`Span` and links spans two ways:

- ``parent_id`` — the span this one is nested under (a query span's
  parent is the warehouse event that emitted it);
- ``links`` — cross-actor causality edges ``(relation, span_id)``.  The
  relations used by the runtime instrumentation:

  ===============  ====================================================
  relation         meaning
  ===============  ====================================================
  ``causes``       the message event that made this span happen (an
                   update span causes the warehouse event processing
                   it; a query span causes the source answer span)
  ``compensates``  a compensating query links every UQS entry whose
                   pending answer it offsets (ECA's ``Q_j<U_i>`` terms,
                   Section 5.2)
  ``installs``     a COLLECT flush links the answers it folds in
  ``recovers``     a recovery span links the crash span it heals
  ===============  ====================================================

Causality across *messages* rides on the messages' natural identities:
update serials and query ids are unique per run, so the tracer keeps a
binding table (``bind``/``lookup``) from keys like ``("U", serial)`` and
``("Q", query_id)`` to span ids.  This is the run's trace context —
every ``UpdateNotification``/``QueryRequest``/``QueryAnswer`` carries it
implicitly, with no change to the wire format or the codec.

Spans live in a bounded ring buffer (``capacity`` spans; eviction is
counted, never silent) and export to JSON lines via
:mod:`repro.obs.export`.  Time is whatever clock the caller injects —
the runtime injects the transport's *virtual* clock, so span timestamps
line up with the deterministic event schedule, not the wall clock.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

#: Default ring-buffer capacity (spans).
DEFAULT_CAPACITY = 65536

#: Causal link relations (see module docstring).
CAUSES = "causes"
COMPENSATES = "compensates"
INSTALLS = "installs"
RECOVERS = "recovers"


class Span:
    """One traced operation: a named interval with causal links.

    Spans are mutable while open (``end`` is ``None``) and frozen in
    meaning once :meth:`Tracer.end` stamps them.  ``attrs`` holds small
    JSON-able values only — the tracer never deep-copies payloads.
    """

    __slots__ = ("span_id", "name", "kind", "start", "end", "parent_id", "links", "attrs")

    def __init__(
        self,
        span_id: int,
        name: str,
        kind: str,
        start: float,
        parent_id: Optional[int] = None,
        links: Tuple[Tuple[str, int], ...] = (),
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.parent_id = parent_id
        self.links: Tuple[Tuple[str, int], ...] = tuple(links)
        self.attrs: Dict[str, object] = dict(attrs or {})

    def link(self, relation: str, span_id: int) -> None:
        """Attach one causal edge ``(relation, span_id)``."""
        self.links = self.links + ((relation, span_id),)

    def linked(self, relation: str) -> List[int]:
        """Span ids this span links to under ``relation``."""
        return [sid for rel, sid in self.links if rel == relation]

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (one trace-file line; see ``repro.obs.export``)."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "parent": self.parent_id,
            "links": [[relation, sid] for relation, sid in self.links],
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return (
            f"Span(#{self.span_id} {self.name!r} kind={self.kind} "
            f"start={self.start:g} links={list(self.links)})"
        )


class Tracer:
    """Span factory + ring buffer + message-causality bindings.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current (virtual) time.
        Defaults to a monotone counter, so unit tests need no transport.
    capacity:
        Ring-buffer size in spans; the oldest spans are evicted first
        and counted in :attr:`dropped`.
    """

    def __init__(self, clock=None, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._clock = clock
        self._tick = 0
        self._next_id = 1
        self._spans: Deque[Span] = deque()
        self._capacity = capacity
        #: Spans evicted because the ring filled up.
        self.dropped = 0
        #: Message identity -> span id (the run's trace context).
        self._bindings: Dict[Tuple[str, object], int] = {}

    # ------------------------------------------------------------------ #
    # Clock
    # ------------------------------------------------------------------ #

    def set_clock(self, clock) -> None:
        """Swap the time source (the runtime injects ``transport.now``)."""
        self._clock = clock

    def now(self) -> float:
        if self._clock is not None:
            return self._clock()
        self._tick += 1
        return float(self._tick)

    # ------------------------------------------------------------------ #
    # Span lifecycle
    # ------------------------------------------------------------------ #

    def start(
        self,
        name: str,
        kind: str,
        parent: Optional[Span] = None,
        links: Iterable[Tuple[str, Optional[int]]] = (),
        **attrs: object,
    ) -> Span:
        """Open a span.  ``links`` entries with a ``None`` id are skipped
        (a lookup that found nothing simply produces no edge)."""
        span = Span(
            self._next_id,
            name,
            kind,
            self.now(),
            parent_id=parent.span_id if parent is not None else None,
            links=tuple((rel, sid) for rel, sid in links if sid is not None),
            attrs=attrs,
        )
        self._next_id += 1
        if len(self._spans) >= self._capacity:
            self._spans.popleft()
            self.dropped += 1
        self._spans.append(span)
        return span

    def end(self, span: Span, **attrs: object) -> Span:
        """Close a span, stamping its end time and final attributes."""
        span.end = self.now()
        if attrs:
            span.attrs.update(attrs)
        return span

    def instant(
        self,
        name: str,
        kind: str,
        parent: Optional[Span] = None,
        links: Iterable[Tuple[str, Optional[int]]] = (),
        **attrs: object,
    ) -> Span:
        """A zero-duration span (a point event on the timeline)."""
        span = self.start(name, kind, parent=parent, links=links, **attrs)
        span.end = span.start
        return span

    # ------------------------------------------------------------------ #
    # Message causality (the trace context)
    # ------------------------------------------------------------------ #

    def bind(self, key: Tuple[str, object], span: Span) -> None:
        """Register ``key`` (e.g. ``("U", serial)``) as produced by ``span``."""
        self._bindings[key] = span.span_id

    def lookup(self, key: Tuple[str, object]) -> Optional[int]:
        """Span id bound to ``key``, or ``None`` if never bound (a miss
        is normal: e.g. replayed messages after ring eviction)."""
        return self._bindings.get(key)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def spans(self) -> List[Span]:
        """Retained spans in start order (oldest may have been evicted)."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self._spans)}, dropped={self.dropped})"
