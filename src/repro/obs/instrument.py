"""The hook surface the runtime and durability layers call.

One :class:`Observability` object bundles a causal :class:`Tracer` and a
metrics :class:`Registry` and exposes *named hooks* — ``source_update``,
``wh_event_begin``, ``wal_append``, ``crash`` … — so the instrumented
code never manipulates spans or instruments directly.  Every hook site
is guarded by ``if obs is not None`` in the caller, which is the entire
cost of the feature when disabled (the overhead benchmark
``benchmarks/test_bench_obs.py`` holds that to noise).

Span vocabulary produced by the runtime instrumentation:

=================  ==========  ============================================
span name          kind        emitted when
=================  ==========  ============================================
``source.update``  update      a source executes one workload update (S_up)
``source.answer``  answer      a source evaluates a query (S_qu)
``wh.update``      wh_event    the warehouse processes an update (W_up)
``wh.answer``      wh_event    the warehouse absorbs an answer (W_ans)
``wh.refresh``     wh_event    the warehouse handles a refresh (W_ref)
``wh.query``       query       an outgoing (possibly compensating) query
``wh.install``     install     COLLECT drained into the view (UQS empty)
``client.refresh`` client      a client asked for a refresh (C_ref)
``client.read``    client      a client sampled the materialized view
``wal.snapshot``   wal         the WAL took a compacting snapshot
``wh.crash``       crash       crash injection killed the warehouse
``wh.recovery``    recovery    snapshot+replay rebuilt the warehouse
=================  ==========  ============================================

Causal links follow :mod:`repro.obs.trace`'s relations: each warehouse
event links ``causes`` to the message span that triggered it; each
``wh.query`` links ``causes`` to the update span it maintains and
``compensates`` to every UQS entry it offsets (Section 5.2's
``Q_j<U_i>`` terms); ``wh.recovery`` links ``recovers`` to the crash.

The registry side is hybrid: protocol-level series (events, queries,
WAL activity, staleness lag, per-algorithm gauges) update live, and
:meth:`Observability.finalize` folds the run's legacy accounting
(``ActorMetrics``, ``ChannelStats``, ``wal_stats``) in afterwards so the
exported JSON reconciles exactly with ``RuntimeResult.metrics_table()``.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Sequence, Tuple

from repro.consistency.staleness import LiveStaleness
from repro.obs.metrics import Registry, ingest_mapping
from repro.obs.trace import (
    CAUSES,
    COMPENSATES,
    DEFAULT_CAPACITY,
    INSTALLS,
    RECOVERS,
    Span,
    Tracer,
)

#: Buckets for answer-size histograms (tuples per answer).
ANSWER_BUCKETS = (0, 1, 2, 5, 10, 25, 100, 1000)


class Observability:
    """Tracer + registry + the named hooks, one object per run.

    Parameters
    ----------
    trace:
        Record spans (disable to keep metrics only).
    capacity:
        Tracer ring-buffer size in spans.
    sharded:
        Declare every warehouse-side instrument with an extra ``shard``
        label so per-shard series never collide.  The warehouse hooks are
        then only valid on :meth:`shard_view` copies (which carry the
        label value); source/client hooks stay on this root object.
        ``False`` (the default) produces byte-identical series names and
        label sets to the pre-sharding exporter.
    """

    def __init__(
        self,
        trace: bool = True,
        capacity: int = DEFAULT_CAPACITY,
        sharded: bool = False,
    ) -> None:
        self.trace_enabled = trace
        self.sharded = sharded
        self.tracer = Tracer(capacity=capacity)
        self.registry = Registry()
        registry = self.registry
        #: Extra label dimension on warehouse-side instruments; empty in
        #: the unsharded layout, so every existing series is unchanged.
        shard_dim: Tuple[str, ...] = ("shard",) if sharded else ()
        #: Label *values* every warehouse-side inc/set passes along —
        #: empty on the root, ``{"shard": "<i>"}`` on a shard view.
        self._shard_labels: Dict[str, str] = {}
        #: Tracer-key namespace separating shard-local query ids.
        self._trace_ns: Tuple[object, ...] = ()
        self._events = registry.counter(
            "repro_warehouse_events_total",
            "atomic warehouse events",
            ("kind",) + shard_dim,
        )
        self._queries = registry.counter(
            "repro_queries_sent_total",
            "query requests shipped to sources",
            ("reissued",) + shard_dim,
        )
        self._compensations = registry.counter(
            "repro_compensating_terms_total",
            "UQS entries compensated against across all queries (Section 5.2)",
            shard_dim,
        )
        self._installs = registry.counter(
            "repro_collect_installs_total", "COLLECT flushes into the view", shard_dim
        )
        self._updates = registry.counter(
            "repro_source_updates_total", "updates executed", ("source",)
        )
        self._answers = registry.counter(
            "repro_source_answers_total", "queries answered", ("source",)
        )
        self._answer_tuples = registry.histogram(
            "repro_answer_tuples",
            "tuples per query answer",
            ("source",),
            buckets=ANSWER_BUCKETS,
        )
        self._reads = registry.counter(
            "repro_client_reads_total", "view reads", ("client",)
        )
        self._wal_appends = registry.counter(
            "repro_wal_append_total", "WAL records appended", ("type",) + shard_dim
        )
        self._wal_snapshots = registry.counter(
            "repro_wal_snapshot_total", "compacting snapshots taken", shard_dim
        )
        self._crashes = registry.counter(
            "repro_warehouse_crashes_total",
            "injected warehouse crashes",
            ("mode",) + shard_dim,
        )
        self._recoveries = registry.counter(
            "repro_warehouse_recoveries_total", "successful WAL recoveries", shard_dim
        )
        self._replayed = registry.counter(
            "repro_recovery_replayed_total",
            "recv records replayed during recovery",
            shard_dim,
        )
        self._uqs_gauge = registry.gauge(
            "repro_uqs_size",
            "unanswered query set size after the last event",
            shard_dim,
        )
        self._staleness_gauge = registry.gauge(
            "repro_staleness_lag_updates",
            "source updates executed but not yet reflected at the warehouse",
            shard_dim,
        )
        self._algo_gauges = registry.gauge(
            "repro_algorithm_gauge",
            "algorithm-reported in-flight state (see WarehouseAlgorithm.gauges)",
            ("gauge",) + shard_dim,
        )
        self._shared_issued = registry.gauge(
            "repro_shared_queries_issued",
            "distinct compensating queries the catalog planner shipped",
            shard_dim,
        )
        self._shared_saved = registry.gauge(
            "repro_shared_queries_saved",
            "member compensating queries absorbed into an already-issued "
            "shared query (source round trips avoided)",
            shard_dim,
        )
        self._staleness = LiveStaleness()
        self._last_crash_span: Optional[Span] = None

    def shard_view(self, shard: int) -> "Observability":
        """A per-shard facade over the same tracer and registry.

        The copy shares every instrument but stamps ``shard=<i>`` on all
        warehouse-side series and tracks its *own* staleness basis (the
        per-shard lag between routed and processed updates — meaningful
        even though each shard sees only a sparse subset of the global
        serial order, because :class:`LiveStaleness` is max-serial based).
        """
        if not self.sharded:
            raise ValueError("shard_view() requires Observability(sharded=True)")
        view = copy.copy(self)
        view._shard_labels = {"shard": str(shard)}
        view._trace_ns = (f"shard{shard}",)
        view._staleness = LiveStaleness()
        view._last_crash_span = None
        return view

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def attach_clock(self, clock) -> None:
        """Use the transport's virtual clock for span timestamps."""
        self.tracer.set_clock(clock)

    def _span(self, *args, **kwargs) -> Optional[Span]:
        if not self.trace_enabled:
            return None
        return self.tracer.instant(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # Source hooks
    # ------------------------------------------------------------------ #

    def source_update(self, source: str, relation: str, serial: int) -> None:
        """A source executed update ``serial`` against ``relation``."""
        self._updates.inc(source=source)
        if not self.sharded:
            # Sharded runs track staleness per shard (see update_routed);
            # a single global basis would mix shards into one gauge.
            self._staleness.executed(serial)
            self._staleness_gauge.set(self._staleness.lag())
        if self.trace_enabled:
            span = self.tracer.instant(
                "source.update", "update", source=source, relation=relation, serial=serial
            )
            self.tracer.bind(("U", serial), span)

    def source_answer(self, source: str, query_id: int, tuples: int) -> None:
        """A source evaluated query ``query_id`` (``tuples`` result rows)."""
        self._answers.inc(source=source)
        self._answer_tuples.observe(tuples, source=source)
        if self.trace_enabled:
            span = self.tracer.instant(
                "source.answer",
                "answer",
                links=((CAUSES, self.tracer.lookup(("Q", query_id))),),
                source=source,
                query_id=query_id,
                tuples=tuples,
            )
            self.tracer.bind(("A", query_id), span)

    # ------------------------------------------------------------------ #
    # Warehouse hooks
    # ------------------------------------------------------------------ #

    def update_routed(self, serial: int) -> None:
        """The router forwarded update ``serial`` to this shard.

        Shard views only: marks the update *executed* on the shard's own
        staleness basis, so the per-shard lag gauge measures routed but
        not-yet-processed updates exactly as the unsharded gauge measures
        executed ones.
        """
        self._staleness.executed(serial)
        self._staleness_gauge.set(self._staleness.lag(), **self._shard_labels)

    def staleness_lag(self) -> int:
        """Current update lag on this object's staleness basis.

        Root object in unsharded runs, a :meth:`shard_view` copy in
        sharded ones (each shard tracks its own basis).  The serving tier
        annotates stale-served reads with this — the same number the
        ``repro_staleness_lag_updates`` gauge last exported.
        """
        return self._staleness.lag()

    _EVENT_NAMES = {"W_up": "wh.update", "W_ans": "wh.answer", "W_ref": "wh.refresh"}

    def wh_event_begin(
        self, kind: str, message: object, origin: Optional[str]
    ) -> Optional[Span]:
        """An atomic warehouse event started; returns its span (or None).

        ``kind`` is the trace event kind (``W_up``/``W_ans``/``W_ref``);
        the causal edge resolves through the message's natural identity
        (update serial or query id).
        """
        self._events.inc(kind=kind, **self._shard_labels)
        if not self.trace_enabled:
            return None
        cause = None
        attrs: Dict[str, object] = dict(self._shard_labels)
        serial = getattr(message, "serial", None)
        query_id = getattr(message, "query_id", None)
        if kind == "W_up" and serial is not None:
            # Update serials are global: the router forwards notifications
            # unchanged, so the causal edge to the source span resolves
            # from any shard.
            cause = self.tracer.lookup(("U", serial))
            attrs["serial"] = serial
        elif kind == "W_ans" and query_id is not None:
            cause = self.tracer.lookup(("A",) + self._trace_ns + (query_id,))
            attrs["query_id"] = query_id
        elif kind == "W_ref" and serial is not None:
            attrs["refresh_serial"] = serial
        if origin is not None:
            attrs["origin"] = origin
        name = self._EVENT_NAMES.get(kind, "wh.event")
        return self.tracer.start(name, "wh_event", links=((CAUSES, cause),), **attrs)

    def wh_query_sent(
        self,
        span: Optional[Span],
        query_id: int,
        destination: str,
        compensates: Sequence[int],
        reissued: bool = False,
    ) -> None:
        """The warehouse shipped a query while processing ``span``.

        ``compensates`` names the UQS entries (query ids) that were
        pending when the query was built — exactly the ``Q_j`` whose
        ``Q_j<U_i>`` terms the query subtracts under ECA.
        """
        self._queries.inc(reissued="yes" if reissued else "no", **self._shard_labels)
        if compensates:
            self._compensations.inc(len(compensates), **self._shard_labels)
        if not self.trace_enabled:
            return
        links = []
        if span is not None:
            # Tie the query directly to the update span that caused it,
            # not just transitively via its parent event span.
            links.extend((CAUSES, sid) for sid in span.linked(CAUSES))
        links.extend(
            (COMPENSATES, self.tracer.lookup(("Q",) + self._trace_ns + (qid,)))
            for qid in compensates
        )
        child = self.tracer.instant(
            "wh.query",
            "query",
            parent=span,
            links=links,
            query_id=query_id,
            destination=destination,
            compensates=list(compensates),
            reissued=reissued,
            **self._shard_labels,
        )
        self.tracer.bind(("Q",) + self._trace_ns + (query_id,), child)

    def wh_event_end(
        self,
        span: Optional[Span],
        kind: str,
        message: object,
        algorithm: object,
        pending_before: Sequence[int],
    ) -> None:
        """The atomic event finished: close the span, refresh the gauges."""
        pending_after = algorithm.pending_query_ids()
        self._uqs_gauge.set(len(pending_after), **self._shard_labels)
        gauges = getattr(algorithm, "gauges", None)
        if gauges is not None:
            for name, value in gauges().items():
                self._algo_gauges.set(value, gauge=name, **self._shard_labels)
        shared_stats = getattr(algorithm, "shared_query_stats", None)
        if shared_stats is not None:
            issued, saved = shared_stats()
            self._shared_issued.set(issued, **self._shard_labels)
            self._shared_saved.set(saved, **self._shard_labels)
        serial = getattr(message, "serial", None)
        if kind == "W_up" and serial is not None:
            self._staleness.processed(serial)
        self._staleness.pending(len(pending_after))
        self._staleness_gauge.set(self._staleness.lag(), **self._shard_labels)
        installed = bool(pending_before) and not pending_after
        if installed:
            self._installs.inc(**self._shard_labels)
        if not self.trace_enabled:
            return
        if installed and span is not None:
            self.tracer.instant(
                "wh.install",
                "install",
                parent=span,
                links=tuple(
                    (INSTALLS, self.tracer.lookup(("A",) + self._trace_ns + (qid,)))
                    for qid in pending_before
                ),
                drained=len(pending_before),
                **self._shard_labels,
            )
        if span is not None:
            self.tracer.end(span, uqs_after=len(pending_after))

    # ------------------------------------------------------------------ #
    # Client hooks
    # ------------------------------------------------------------------ #

    def client_refresh(self, client: str, serial: int) -> None:
        """A client sent a :class:`RefreshRequest`."""
        if self.trace_enabled:
            self.tracer.instant("client.refresh", "client", client=client, serial=serial)

    def client_read(self, client: str, rows: int) -> None:
        """A client sampled the materialized view (``rows`` tuples seen)."""
        self._reads.inc(client=client)
        if self.trace_enabled:
            self.tracer.instant("client.read", "client", client=client, rows=rows)

    # ------------------------------------------------------------------ #
    # Durability hooks
    # ------------------------------------------------------------------ #

    def wal_append(self, record_type: str) -> None:
        """One WAL record hit the log (metrics only; appends are hot)."""
        self._wal_appends.inc(type=record_type, **self._shard_labels)

    def wal_snapshot(self, lsn: int) -> None:
        """The WAL took a compacting snapshot as of ``lsn``."""
        self._wal_snapshots.inc(**self._shard_labels)
        if self.trace_enabled:
            self.tracer.instant("wal.snapshot", "wal", lsn=lsn, **self._shard_labels)

    def crash(self, event_index: int, mode: str, drop_sends: bool) -> None:
        """Crash injection killed the warehouse after ``event_index``."""
        self._crashes.inc(mode=mode, **self._shard_labels)
        if self.trace_enabled:
            self._last_crash_span = self.tracer.instant(
                "wh.crash",
                "crash",
                event_index=event_index,
                mode=mode,
                drop_sends=drop_sends,
                **self._shard_labels,
            )

    def recovery(
        self, snapshot_lsn: int, replayed: int, reissued: int, torn: int = 0
    ) -> None:
        """Snapshot+replay rebuilt the warehouse (links back to the crash)."""
        self._recoveries.inc(**self._shard_labels)
        self._replayed.inc(replayed, **self._shard_labels)
        if self.trace_enabled:
            crash = self._last_crash_span
            self.tracer.instant(
                "wh.recovery",
                "recovery",
                links=((RECOVERS, crash.span_id if crash is not None else None),),
                snapshot_lsn=snapshot_lsn,
                replayed=replayed,
                reissued=reissued,
                torn=torn,
                **self._shard_labels,
            )

    # ------------------------------------------------------------------ #
    # End of run
    # ------------------------------------------------------------------ #

    def finalize(self, result: object) -> Registry:
        """Fold a :class:`RuntimeResult`'s accounting into the registry.

        After this, ``repro_actor_*_total{actor=...}`` and
        ``repro_channel_*_total{channel=...}`` reproduce
        ``result.metrics_table()`` exactly (same message/byte counts) —
        the reconciliation the integration tests assert.
        """
        for name, metrics in result.metrics.items():
            fields = metrics.as_dict()
            role = fields.pop("role")
            # Sharded rows carry a "shard" field; the actor name already
            # distinguishes per-shard series ("shard0", ...), and keeping
            # the ingest label set uniform across actors is what lets one
            # counter family hold every row.
            fields.pop("shard", None)
            ingest_mapping(
                self.registry,
                "repro_actor",
                fields,
                help_text="per-actor accounting (ActorMetrics)",
                labels={"actor": name, "role": role},
            )
        for name, stats in result.channel_stats.items():
            ingest_mapping(
                self.registry,
                "repro_channel",
                stats.as_dict(),
                help_text="per-channel transport accounting (ChannelStats)",
                labels={"channel": name},
            )
        if getattr(result, "wal_stats", None):
            wal = result.wal_stats
            self.registry.gauge(
                "repro_wal_records", "WAL records across all incarnations"
            ).set(wal["records"])
            self.registry.gauge(
                "repro_wal_snapshots", "snapshots across all incarnations"
            ).set(wal["snapshots"])
            self.registry.gauge("repro_wal_last_lsn", "final LSN").set(wal["last_lsn"])
        run = self.registry.gauge("repro_run", "run-level outcomes", ("stat",))
        run.set(result.updates, stat="updates")
        run.set(result.quiesce_latency, stat="quiesce_latency")
        run.set(result.virtual_duration, stat="virtual_duration")
        run.set(result.wall_seconds, stat="wall_seconds")
        return self.registry

    def __repr__(self) -> str:
        return (
            f"Observability(trace={self.trace_enabled}, "
            f"spans={len(self.tracer)}, registry={self.registry!r})"
        )
