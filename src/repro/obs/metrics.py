"""A labelled metrics registry: counters, gauges, and histograms.

Before this module the run's numbers were scattered: per-actor
``ActorMetrics``, per-channel ``ChannelStats``, the cost model's
``CostRecorder`` (the paper's M/B/IO from Section 6), and the WAL's
``wal_stats`` — four shapes, four access paths.  The :class:`Registry`
gives them one sink with one naming scheme and two export formats
(Prometheus text and JSON; see :mod:`repro.obs.export`).

Model
-----
An *instrument* is created once per name with a fixed tuple of label
names; every observation then names a concrete label-value combination
(a *series*):

>>> from repro.obs.metrics import Registry
>>> reg = Registry()
>>> sent = reg.counter("repro_actor_sent_total", "messages sent", ("actor",))
>>> sent.inc(3, actor="warehouse")
>>> sent.value(actor="warehouse")
3

Counters only go up, gauges go anywhere, histograms accumulate bucketed
observations plus sum and count (Prometheus conventions: cumulative
buckets with an ``le`` label and a ``+Inf`` catch-all).

``Registry.diff`` produces the per-run summary delta between two
:meth:`Registry.snapshot` calls — how much each series moved during a
phase, which is what benchmark tables want.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

#: Default histogram buckets (virtual-time latencies and small counts).
DEFAULT_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0)

LabelValues = Tuple[object, ...]


class MetricError(SimulationError):
    """Misuse of the metrics API (wrong labels, clashing registration)."""


class Instrument:
    """Base class: a named family of series, one per label combination."""

    metric_type = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str]) -> None:
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        #: label values (in declaration order) -> stored value.
        self._series: Dict[LabelValues, object] = {}

    def _key(self, labels: Dict[str, object]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(labels[name] for name in self.label_names)

    def series(self) -> Dict[LabelValues, object]:
        """All series as ``label values -> value`` (insertion order)."""
        return dict(self._series)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, series={len(self._series)})"


class Counter(Instrument):
    """Monotonically increasing count (``*_total`` by convention)."""

    metric_type = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise MetricError(f"{self.name}: counters cannot decrease ({amount})")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(self._key(labels), 0)


class Gauge(Instrument):
    """A value that can go up and down (sizes, lags, in-flight counts)."""

    metric_type = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._series[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._series.get(self._key(labels), 0)


class _HistogramState:
    """Per-series histogram accumulator (cumulative on render)."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for +Inf
        self.total = 0.0
        self.count = 0


class Histogram(Instrument):
    """Bucketed distribution with sum and count."""

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names)
        ordered = tuple(sorted(buckets))
        if not ordered:
            raise MetricError(f"{self.name}: need at least one bucket bound")
        self.buckets = ordered

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = _HistogramState(len(self.buckets))
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        state.bucket_counts[index] += 1
        state.total += value
        state.count += 1

    def snapshot(self, **labels: object) -> Dict[str, object]:
        """``{"count", "sum", "buckets": {le: cumulative}}`` for one series."""
        state = self._series.get(self._key(labels))
        if state is None:
            return {"count": 0, "sum": 0.0, "buckets": {}}
        return _histogram_dict(self, state)


def _histogram_dict(histogram: Histogram, state: _HistogramState) -> Dict[str, object]:
    cumulative = 0
    buckets: Dict[str, int] = {}
    for bound, raw in zip(histogram.buckets, state.bucket_counts):
        cumulative += raw
        buckets[_format_number(bound)] = cumulative
    buckets["+Inf"] = cumulative + state.bucket_counts[-1]
    return {"count": state.count, "sum": state.total, "buckets": buckets}


def _format_number(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(value)


def _format_labels(names: Sequence[str], values: LabelValues, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Registry:
    """All instruments of one process/run, keyed by metric name.

    Re-registering an existing name returns the existing instrument when
    the type and labels match (so independent components can share a
    metric) and raises :class:`MetricError` otherwise.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help_text, labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labels, buckets))

    def _register(self, instrument: Instrument) -> Instrument:
        existing = self._instruments.get(instrument.name)
        if existing is not None:
            if (
                type(existing) is not type(instrument)
                or existing.label_names != instrument.label_names
            ):
                raise MetricError(
                    f"metric {instrument.name!r} re-registered with a "
                    f"different type or labels"
                )
            return existing
        self._instruments[instrument.name] = instrument
        return instrument

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def instruments(self) -> List[Instrument]:
        return list(self._instruments.values())

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def as_json(self) -> Dict[str, object]:
        """JSON-able dump: ``name -> {type, help, labels, series: [...]}}``.

        Each series entry is ``{"labels": {...}, "value": ...}`` (the
        value is the histogram dict for histograms).
        """
        out: Dict[str, object] = {}
        for instrument in self._instruments.values():
            series = []
            for values, stored in instrument.series().items():
                value: object = stored
                if isinstance(stored, _HistogramState):
                    value = _histogram_dict(instrument, stored)
                series.append(
                    {
                        "labels": dict(zip(instrument.label_names, values)),
                        "value": value,
                    }
                )
            out[instrument.name] = {
                "type": instrument.metric_type,
                "help": instrument.help_text,
                "labels": list(instrument.label_names),
                "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (one block per instrument)."""
        lines: List[str] = []
        for instrument in self._instruments.values():
            if instrument.help_text:
                lines.append(f"# HELP {instrument.name} {instrument.help_text}")
            lines.append(f"# TYPE {instrument.name} {instrument.metric_type}")
            for values, stored in instrument.series().items():
                if isinstance(stored, _HistogramState):
                    rendered = _histogram_dict(instrument, stored)
                    for le, cumulative in rendered["buckets"].items():
                        label_text = _format_labels(
                            instrument.label_names, values, f'le="{le}"'
                        )
                        lines.append(
                            f"{instrument.name}_bucket{label_text} {cumulative}"
                        )
                    base = _format_labels(instrument.label_names, values)
                    lines.append(
                        f"{instrument.name}_sum{base} "
                        f"{_format_number(rendered['sum'])}"
                    )
                    lines.append(f"{instrument.name}_count{base} {rendered['count']}")
                else:
                    label_text = _format_labels(instrument.label_names, values)
                    lines.append(
                        f"{instrument.name}{label_text} {_format_number(stored)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------ #
    # Snapshots and per-run diffs
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Dict[LabelValues, object]]:
        """Flat copy of every scalar series (histograms appear as counts)."""
        out: Dict[str, Dict[LabelValues, object]] = {}
        for instrument in self._instruments.values():
            series: Dict[LabelValues, object] = {}
            for values, stored in instrument.series().items():
                if isinstance(stored, _HistogramState):
                    series[values] = stored.count
                else:
                    series[values] = stored
            out[instrument.name] = series
        return out

    @staticmethod
    def diff(
        before: Dict[str, Dict[LabelValues, object]],
        after: Dict[str, Dict[LabelValues, object]],
    ) -> Dict[str, Dict[LabelValues, float]]:
        """Per-series deltas ``after - before``, zero-change series elided."""
        out: Dict[str, Dict[LabelValues, float]] = {}
        for name, series in after.items():
            previous = before.get(name, {})
            deltas = {}
            for values, value in series.items():
                try:
                    delta = value - previous.get(values, 0)
                except TypeError:
                    continue
                if delta:
                    deltas[values] = delta
            if deltas:
                out[name] = deltas
        return out

    def __repr__(self) -> str:
        return f"Registry(instruments={len(self._instruments)})"


def ingest_mapping(
    registry: Registry,
    prefix: str,
    counts: Dict[str, object],
    help_text: str = "",
    labels: Optional[Dict[str, object]] = None,
) -> None:
    """Publish a plain ``key -> number`` dict as one counter per key.

    The bridge used to fold legacy accounting objects (``ActorMetrics``,
    ``ChannelStats.as_dict``, ``CostRecorder.summary``, ``wal_stats``)
    into the registry without rewriting them: each numeric entry becomes
    ``{prefix}_{key}_total`` with the given constant labels.
    """
    labels = labels or {}
    names = tuple(sorted(labels))
    for key, value in counts.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        counter = registry.counter(f"{prefix}_{key}_total", help_text, names)
        counter.inc(value, **labels)
