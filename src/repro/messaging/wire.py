"""Wire codecs: what a protocol message costs in real bytes.

The cost model's ``B`` metric historically came from a pluggable *sizer*
(:meth:`repro.costmodel.counters.CostRecorder.message_size`) that counts
tuples and multiplies by an abstract per-tuple byte weight — fine for the
paper's analysis, but not what a deployed warehouse would put on a
socket.  A :class:`WireCodec` closes that gap: it serializes each message
through the durability codec's canonical JSON form, frames it with a
4-byte big-endian length prefix, optionally compresses the payload, and
reports ``len(frame)`` as the message's size.  Channels and transports
given a codec charge ``sent_bytes`` with real framed bytes instead of the
sizer's estimate (the codec wins when both are present).

Registry (``--wire-codec`` on ``repro runtime``):

- ``none``  — no codec; ``sent_bytes`` keeps the legacy sizer semantics.
  This is the default, byte-for-byte identical to runs before the codec
  existed.
- ``frame`` — length-prefixed canonical JSON, uncompressed.  The identity
  codec: ``decode(encode(m)) == m`` with no information loss.
- ``zlib``  — ``frame`` with a zlib-compressed payload (always available:
  zlib is in the standard library).
- ``zstd``  — ``frame`` with a zstandard-compressed payload; gated on the
  optional ``zstandard`` package and raises a clear error when missing.

Every codec is self-describing on the wire: the frame header carries the
codec's tag byte, so :func:`WireCodec.decode` rejects frames produced by
a different codec instead of returning garbage.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Callable, Dict, List, Optional, cast

from repro.errors import ProtocolError
from repro.messaging.messages import Message

_HEADER = struct.Struct(">IB")  # payload length, codec tag byte

_TAG_FRAME = 0
_TAG_ZLIB = 1
_TAG_ZSTD = 2


def _dump_message(message: Message) -> bytes:
    # Imported lazily: repro.durability.codec imports messaging.messages,
    # so a module-level import here would be circular.
    from repro.durability.codec import canonical_json, encode_value

    return canonical_json(encode_value(message)).encode("utf-8")


def _load_message(payload: bytes) -> Message:
    from repro.durability.codec import decode_value

    value = decode_value(json.loads(payload.decode("utf-8")))
    if not isinstance(value, Message):
        raise ProtocolError(f"wire frame decoded to non-message {value!r}")
    return value


class WireCodec:
    """One named framing/compression scheme for protocol messages.

    ``encode`` produces the full frame (header + payload); ``size`` is
    what channels charge to ``sent_bytes``.  Compression is per-message —
    no shared dictionary or stream state — so frames are independently
    decodable, matching the channels' message-at-a-time delivery.
    """

    __slots__ = ("name", "tag", "_compress", "_decompress")

    def __init__(
        self,
        name: str,
        tag: int,
        compress: Optional[Callable[[bytes], bytes]] = None,
        decompress: Optional[Callable[[bytes], bytes]] = None,
    ) -> None:
        self.name = name
        self.tag = tag
        self._compress = compress
        self._decompress = decompress

    def encode(self, message: Message) -> bytes:
        payload = _dump_message(message)
        if self._compress is not None:
            payload = self._compress(payload)
        return _HEADER.pack(len(payload), self.tag) + payload

    def decode(self, frame: bytes) -> Message:
        if len(frame) < _HEADER.size:
            raise ProtocolError(f"wire frame truncated: {len(frame)} byte(s)")
        length, tag = _HEADER.unpack_from(frame)
        if tag != self.tag:
            raise ProtocolError(
                f"codec {self.name!r} (tag {self.tag}) received a frame "
                f"with tag {tag}"
            )
        payload = frame[_HEADER.size :]
        if len(payload) != length:
            raise ProtocolError(
                f"wire frame length mismatch: header says {length}, "
                f"got {len(payload)}"
            )
        if self._decompress is not None:
            payload = self._decompress(payload)
        return _load_message(payload)

    def size(self, message: Message) -> int:
        """Framed size in bytes — what ``sent_bytes`` accumulates."""
        return len(self.encode(message))

    def __repr__(self) -> str:
        return f"WireCodec({self.name!r})"


def _make_zstd() -> WireCodec:
    try:
        import zstandard
    except ImportError:
        raise ProtocolError(
            "wire codec 'zstd' needs the optional 'zstandard' package, "
            "which is not installed; use 'zlib' (standard library) instead"
        ) from None
    compressor = zstandard.ZstdCompressor()
    decompressor = zstandard.ZstdDecompressor()
    return WireCodec(
        "zstd", _TAG_ZSTD, compressor.compress, decompressor.decompress
    )


_FACTORIES: Dict[str, Callable[[], Optional[WireCodec]]] = {
    "none": lambda: None,
    "frame": lambda: WireCodec("frame", _TAG_FRAME),
    "zlib": lambda: WireCodec(
        "zlib",
        _TAG_ZLIB,
        lambda raw: zlib.compress(raw, 6),
        zlib.decompress,
    ),
    "zstd": _make_zstd,
}

#: Codec names accepted by :func:`create_codec` (CLI choices).
WIRE_CODECS: List[str] = sorted(_FACTORIES)


def create_codec(name: str) -> Optional[WireCodec]:
    """Build the named codec; ``"none"`` yields ``None`` (legacy sizing)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ProtocolError(
            f"unknown wire codec {name!r}; choose from {WIRE_CODECS}"
        ) from None
    return cast(Optional[WireCodec], factory())
