"""Message types exchanged between source and warehouse."""

from __future__ import annotations

from typing import Tuple

from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.source.updates import Update


class Message:
    """Base class for protocol messages (useful for isinstance dispatch).

    Messages compare structurally (and hash consistently): two messages
    are equal when they have the same type and the same field values.
    The write-ahead log's replay machinery and the tests rely on this to
    compare logged messages against live ones directly.
    """

    __slots__ = ()

    def _fields(self) -> Tuple[object, ...]:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message) or type(other) is not type(self):
            return NotImplemented
        return self._fields() == other._fields()

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + self._fields())


class UpdateNotification(Message):
    """Source -> warehouse: "update U happened" (the payload of ``S_up``).

    ``serial`` is the source-assigned sequence number of the update; it
    exists for logging and trace alignment, not for the algorithms — the
    paper's algorithms rely only on FIFO delivery.
    """

    __slots__ = ("update", "serial")

    def __init__(self, update: Update, serial: int) -> None:
        self.update = update
        self.serial = serial

    def __repr__(self) -> str:
        return f"UpdateNotification(#{self.serial}, {self.update!r})"


class UpdateBatch(Message):
    """A run of same-source update notifications, coalesced by the kernel.

    The paper's Section 6 / Appendix D performance study generalizes
    compensation to k-update batches ``Q<U1,...,Uk>``; this message is the
    protocol-level carrier.  Kernels build it by draining up to
    ``batch_k`` consecutive :class:`UpdateNotification` messages off one
    warehouse inbox and deliver it as **one atomic** ``W_up`` event, so
    the algorithm may answer the whole run with a single compensating
    query.  At ``batch_k == 1`` no batch is ever constructed — the legacy
    per-update protocol is preserved byte for byte.
    """

    __slots__ = ("notifications",)

    def __init__(self, notifications: Tuple[UpdateNotification, ...]) -> None:
        if not notifications:
            raise ValueError("an update batch needs at least one notification")
        self.notifications = tuple(notifications)

    @property
    def serial(self) -> int:
        """The last member's serial (the batch's causal identity)."""
        return self.notifications[-1].serial

    @property
    def first_serial(self) -> int:
        return self.notifications[0].serial

    def updates(self) -> Tuple[object, ...]:
        """The member updates, in arrival order."""
        return tuple(n.update for n in self.notifications)

    def __len__(self) -> int:
        return len(self.notifications)

    def __repr__(self) -> str:
        return (
            f"UpdateBatch(#{self.first_serial}..#{self.serial}, "
            f"k={len(self.notifications)})"
        )


class QueryRequest(Message):
    """Warehouse -> source: "evaluate this query"."""

    __slots__ = ("query_id", "query")

    def __init__(self, query_id: int, query: Query) -> None:
        self.query_id = query_id
        self.query = query

    def __repr__(self) -> str:
        return f"QueryRequest(Q{self.query_id}, {self.query!r})"


class QueryAnswer(Message):
    """Source -> warehouse: the answer relation for an earlier query."""

    __slots__ = ("query_id", "answer")

    def __init__(self, query_id: int, answer: SignedBag) -> None:
        self.query_id = query_id
        self.answer = answer

    def __repr__(self) -> str:
        return f"QueryAnswer(Q{self.query_id}, {self.answer!r})"


class ShardEnvelope(Message):
    """Shard -> router: "forward this query request to ``destination``".

    In a sharded run the per-shard warehouse actors never talk to the
    sources directly: each outgoing :class:`QueryRequest` (carrying the
    shard's *local* query id) is wrapped in an envelope and handed to the
    router, which multiplexes it onto the global query-id space before
    shipping it — mirroring how a
    :class:`~repro.warehouse.catalog.WarehouseCatalog` remaps its member
    views' ids, one level up.
    """

    __slots__ = ("destination", "request")

    def __init__(self, destination: str, request: QueryRequest) -> None:
        self.destination = destination
        self.request = request

    def __repr__(self) -> str:
        return f"ShardEnvelope(->{self.destination}, {self.request!r})"


class RefreshRequest(Message):
    """Warehouse client -> warehouse: "bring the view up to date".

    Not part of the paper's core protocol: it models the *deferred* and
    *periodic* maintenance timings of Section 2 ("with little or no
    modification our algorithms can be applied to deferred and periodic
    update as well").  A refresh never touches the source directly — the
    maintenance algorithm decides what queries to issue.
    """

    __slots__ = ("serial",)

    def __init__(self, serial: int = 0) -> None:
        self.serial = serial

    def __repr__(self) -> str:
        return f"RefreshRequest(#{self.serial})"
