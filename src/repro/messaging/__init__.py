"""Messaging substrate between source and warehouse.

Section 3 assumes messages are delivered **in order** and processed in
order; the compensation logic of ECA is only sound under that assumption
(receiving the notification for ``U2`` before the answer to ``Q1`` is what
lets the warehouse deduce ``Q1`` will see ``U2``).  We model this with two
FIFO channels:

- source -> warehouse, carrying :class:`UpdateNotification` and
  :class:`QueryAnswer` messages interleaved (one stream — ordering between
  notifications and answers is what ECA relies on);
- warehouse -> source, carrying :class:`QueryRequest` messages.
"""

from repro.messaging.channel import FifoChannel
from repro.messaging.messages import (
    Message,
    QueryAnswer,
    QueryRequest,
    UpdateBatch,
    UpdateNotification,
)
from repro.messaging.wire import WIRE_CODECS, WireCodec, create_codec

__all__ = [
    "FifoChannel",
    "Message",
    "QueryAnswer",
    "QueryRequest",
    "UpdateBatch",
    "UpdateNotification",
    "WIRE_CODECS",
    "WireCodec",
    "create_codec",
]
