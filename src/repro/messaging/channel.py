"""In-order message channels.

A :class:`FifoChannel` delivers messages in exactly the order they were
sent.  It also counts messages and (via a pluggable sizer) bytes, feeding
the cost model's ``M`` and ``B`` metrics.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.errors import ProtocolError
from repro.messaging.messages import Message


class FifoChannel:
    """A reliable, ordered, unidirectional message queue."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: Deque[Message] = deque()
        self.sent_count = 0
        self.delivered_count = 0

    def send(self, message: Message) -> None:
        self._queue.append(message)
        self.sent_count += 1

    def receive(self) -> Message:
        """Deliver the oldest undelivered message."""
        if not self._queue:
            raise ProtocolError(f"receive on empty channel {self.name!r}")
        self.delivered_count += 1
        return self._queue.popleft()

    def peek(self) -> Optional[Message]:
        """The next message to be delivered, without consuming it."""
        return self._queue[0] if self._queue else None

    def pending(self) -> int:
        return len(self._queue)

    def is_empty(self) -> bool:
        return not self._queue

    def drain(self) -> Iterator[Message]:
        """Deliver all pending messages."""
        while self._queue:
            yield self.receive()

    def snapshot(self) -> List[Message]:
        """The undelivered messages, oldest first (inspection only)."""
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"FifoChannel({self.name}, pending={len(self._queue)})"
