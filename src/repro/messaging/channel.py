"""In-order message channels.

A :class:`FifoChannel` delivers messages in exactly the order they were
sent.  It also counts messages and (via a pluggable sizer) bytes, feeding
the cost model's ``M`` and ``B`` metrics: pass a ``sizer`` callable (for
example :meth:`repro.costmodel.counters.CostRecorder.message_size`) and
:attr:`FifoChannel.sent_bytes` accumulates the size of every message sent.

Alternatively pass a :class:`repro.messaging.wire.WireCodec` and
``sent_bytes`` accumulates *real framed bytes* — the length-prefixed
(optionally compressed) serialization each send would put on a socket.
When both are given, the codec wins.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Iterator, List, Optional

from repro.errors import ChannelEmpty
from repro.messaging.messages import Message

if TYPE_CHECKING:
    from repro.messaging.wire import WireCodec

#: Computes the on-the-wire size of one message, in bytes.
Sizer = Callable[[Message], int]


class FifoChannel:
    """A reliable, ordered, unidirectional message queue."""

    def __init__(
        self,
        name: str,
        sizer: Optional[Sizer] = None,
        codec: Optional["WireCodec"] = None,
    ) -> None:
        self.name = name
        self._queue: Deque[Message] = deque()
        self._sizer = sizer
        self._codec = codec
        self.sent_count = 0
        self.delivered_count = 0
        #: Total bytes sent: real framed bytes with a codec, sized bytes
        #: with a sizer, 0 with neither.
        self.sent_bytes = 0

    def send(self, message: Message) -> None:
        self._queue.append(message)
        self.sent_count += 1
        if self._codec is not None:
            self.sent_bytes += self._codec.size(message)
        elif self._sizer is not None:
            self.sent_bytes += self._sizer(message)

    def receive(self) -> Message:
        """Deliver the oldest undelivered message.

        Raises :class:`~repro.errors.ChannelEmpty` (a
        :class:`~repro.errors.ProtocolError`) when nothing is pending.
        """
        if not self._queue:
            raise ChannelEmpty(f"receive on empty channel {self.name!r}")
        self.delivered_count += 1
        return self._queue.popleft()

    def peek(self) -> Optional[Message]:
        """The next message to be delivered, without consuming it."""
        return self._queue[0] if self._queue else None

    def pending(self) -> int:
        return len(self._queue)

    def is_empty(self) -> bool:
        return not self._queue

    def drain(self) -> Iterator[Message]:
        """Deliver all pending messages."""
        while self._queue:
            yield self.receive()

    def snapshot(self) -> List[Message]:
        """The undelivered messages, oldest first (inspection only)."""
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"FifoChannel({self.name}, pending={len(self._queue)})"
