"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so a
downstream application can catch one type to handle anything the warehouse
machinery raises while still letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A relation schema is malformed or violated.

    Raised for duplicate attribute names, arity mismatches between a schema
    and a tuple, references to unknown attributes, and key declarations that
    do not name schema attributes.
    """


class ExpressionError(ReproError):
    """A relational expression (term, query, or view) is malformed.

    Raised for projections onto attributes the product does not produce,
    conditions referencing unknown attributes, and substitutions that name
    relations not used by the expression.
    """


class SignError(ReproError):
    """A signed-tuple operation received an invalid sign value."""


class UpdateError(ReproError):
    """A base-relation update could not be applied.

    Raised when deleting a tuple that is not present, when an update names a
    relation the source does not store, or when the updated tuple does not
    match the relation's schema.
    """


class ViewStateError(ReproError):
    """Applying a delta would drive a materialized view inconsistent.

    In a correct run, ``MV + COLLECT`` never produces a tuple with negative
    multiplicity; this error surfaces algorithm bugs instead of silently
    clamping counts.
    """


class ProtocolError(ReproError):
    """The source/warehouse messaging protocol was violated.

    Raised for out-of-order message consumption, answers to unknown queries,
    and attempts to process events after a simulation has quiesced.
    """


class ChannelEmpty(ProtocolError):
    """A receive was attempted on a channel with no deliverable message.

    Distinct from other :class:`ProtocolError` cases so that callers which
    poll (the concurrent runtime's transports) can treat "nothing there
    yet" as a wait condition while still surfacing genuine violations.
    """


class TransportClosed(ReproError):
    """An actor tried to use a transport after the runtime shut it down.

    The concurrent runtime raises this out of pending receives to unwind
    source, warehouse, and client actors once a run has quiesced.
    """


class SimulationError(ReproError):
    """A simulation schedule requested an impossible step.

    Raised when a schedule asks the source to answer with no pending query,
    asks for an update when the workload is exhausted, or deadlocks before
    quiescence.
    """


class ConsistencyViolation(ReproError):
    """A trace failed a correctness property it was asserted to satisfy."""
