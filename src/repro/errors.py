"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so a
downstream application can catch one type to handle anything the warehouse
machinery raises while still letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A relation schema is malformed or violated.

    Raised for duplicate attribute names, arity mismatches between a schema
    and a tuple, references to unknown attributes, and key declarations that
    do not name schema attributes.
    """


class ExpressionError(ReproError):
    """A relational expression (term, query, or view) is malformed.

    Raised for projections onto attributes the product does not produce,
    conditions referencing unknown attributes, and substitutions that name
    relations not used by the expression.
    """


class SignError(ReproError):
    """A signed-tuple operation received an invalid sign value."""


class UpdateError(ReproError):
    """A base-relation update could not be applied.

    Raised when deleting a tuple that is not present, when an update names a
    relation the source does not store, or when the updated tuple does not
    match the relation's schema.
    """


class ViewStateError(ReproError):
    """Applying a delta would drive a materialized view inconsistent.

    In a correct run, ``MV + COLLECT`` never produces a tuple with negative
    multiplicity; this error surfaces algorithm bugs instead of silently
    clamping counts.
    """


class ProtocolError(ReproError):
    """The source/warehouse messaging protocol was violated.

    Raised for out-of-order message consumption, answers to unknown queries,
    and attempts to process events after a simulation has quiesced.
    """


class ChannelEmpty(ProtocolError):
    """A receive was attempted on a channel with no deliverable message.

    Distinct from other :class:`ProtocolError` cases so that callers which
    poll (the concurrent runtime's transports) can treat "nothing there
    yet" as a wait condition while still surfacing genuine violations.
    """


class TransportClosed(ReproError):
    """An actor tried to use a transport after the runtime shut it down.

    The concurrent runtime raises this out of pending receives to unwind
    source, warehouse, and client actors once a run has quiesced.
    """


class SimulationError(ReproError):
    """A simulation schedule requested an impossible step.

    Raised when a schedule asks the source to answer with no pending query,
    asks for an update when the workload is exhausted, or deadlocks before
    quiescence.
    """


class ConsistencyViolation(ReproError):
    """A trace failed a correctness property it was asserted to satisfy."""


class DurabilityError(ReproError):
    """Base class for persistence (codec / WAL / recovery) failures."""


class CodecError(DurabilityError):
    """A value could not be encoded to, or decoded from, durable form.

    Raised for unknown tags, version mismatches, and payloads that fail
    round-trip validation.
    """


class WalCorruption(DurabilityError):
    """A write-ahead log or snapshot record failed its CRC or framing check.

    A torn *tail* (the last record cut short by a crash) is expected and
    silently truncated during recovery; this error is reserved for
    corruption that cannot be explained by a torn write — e.g. a bad
    record followed by valid ones, or an unreadable snapshot.
    """


class WalLocked(DurabilityError):
    """Another live process already owns this WAL directory.

    Two warehouse actors appending to the same log would interleave their
    records into an unreplayable history; the lock file makes the second
    opener fail fast instead.  A lock whose owning process is gone (a
    stale lock left by a crash) is stolen silently — crash recovery must
    be able to reopen its own directory.
    """


class RecoveryError(DurabilityError):
    """Crash recovery could not rebuild a live warehouse.

    Raised when no snapshot exists, when replay references state the
    snapshot does not contain, or when the rebuilt algorithm fails
    validation.
    """


class WarehouseCrashed(ReproError):
    """A :class:`CrashPolicy` killed the warehouse actor at this point.

    Carries where the crash fired so the harness can recover
    deterministically and the trace can record the exact crash point.
    """

    def __init__(self, event_index: int, mode: str, drop_sends: bool) -> None:
        super().__init__(
            f"warehouse crashed at event #{event_index} (mode={mode!r}, "
            f"drop_sends={drop_sends})"
        )
        self.event_index = event_index
        self.mode = mode
        self.drop_sends = drop_sends
