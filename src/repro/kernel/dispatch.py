"""Atomic event dispatch: the one place messages meet algorithms.

Every execution path — the synchronous kernel, the asyncio warehouse
actor, and WAL replay during recovery — feeds incoming messages through
:func:`dispatch_event`.  It classifies the message (``W_up`` / ``W_ans``
/ ``W_ref``), invokes the matching routed protocol method, and renders
the canonical trace detail string, so identical executions produce
identical traces regardless of which kernel ran them.

Routing helpers live here too: :func:`query_owner` maps an owner-routed
(``destination=None``) request to the single source owning the relations
it reads.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.core.protocol import WarehouseAlgorithm
from repro.errors import ProtocolError
from repro.messaging.messages import (
    Message,
    QueryAnswer,
    QueryRequest,
    RefreshRequest,
    UpdateBatch,
    UpdateNotification,
)
from repro.relational.expressions import Query
from repro.simulation.trace import W_ANS, W_REF, W_UP
from repro.source.base import Source

#: Serving-cache keys one event dirtied: ``(view_name, cache_key)`` pairs.
DirtyKeys = FrozenSet[Tuple[str, Tuple[object, ...]]]

#: What dispatch returns: the trace kind, the detail string, the routed
#: ``(destination, request)`` pairs the algorithm emitted, and the serving
#: cache keys the event dirtied.
DispatchResult = Tuple[
    str, str, List[Tuple[Optional[str], QueryRequest]], DirtyKeys
]


def event_kind(message: Message) -> str:
    """The warehouse trace kind this message produces when dispatched."""
    if isinstance(message, UpdateNotification):
        return W_UP
    if isinstance(message, UpdateBatch):
        # A coalesced run of updates is still one W_up event.
        return W_UP
    if isinstance(message, QueryAnswer):
        return W_ANS
    if isinstance(message, RefreshRequest):
        return W_REF
    raise ProtocolError(f"warehouse received unknown message: {message!r}")


def validate_routed(
    algorithm: WarehouseAlgorithm,
    method: str,
    routed: List[Tuple[Optional[str], QueryRequest]],
) -> List[Tuple[Optional[str], QueryRequest]]:
    """Reject protocol violations before they reach a channel.

    Every kernel unpacks routed results as ``(destination, request)``
    pairs; an algorithm returning bare :class:`QueryRequest` objects
    would otherwise surface as an opaque unpacking ``TypeError`` deep in
    the kernel loop.  Failing here names the algorithm, the method, and
    the offending value instead.
    """
    name = getattr(algorithm, "name", type(algorithm).__name__)
    for item in routed:
        if isinstance(item, QueryRequest):
            raise ProtocolError(
                f"algorithm {name!r}: {method} returned a bare QueryRequest "
                f"(query_id={item.query_id}); the routed protocol requires "
                f"(destination, request) pairs — use destination=None for "
                f"owner routing"
            )
        if not (isinstance(item, tuple) and len(item) == 2):
            raise ProtocolError(
                f"algorithm {name!r}: {method} returned {item!r}; the "
                f"routed protocol requires (destination, request) pairs"
            )
        destination, request = item
        if destination is not None and not isinstance(destination, str):
            raise ProtocolError(
                f"algorithm {name!r}: {method} routed a request to "
                f"{destination!r}; destinations are source names (str) or "
                f"None for owner routing"
            )
        if not isinstance(request, QueryRequest):
            raise ProtocolError(
                f"algorithm {name!r}: {method} routed {request!r}; only "
                f"QueryRequest messages may be sent to sources"
            )
    return routed


def dispatch_event(
    algorithm: WarehouseAlgorithm,
    origin: Optional[str],
    message: Message,
    qualified: bool = True,
) -> DispatchResult:
    """Process one atomic warehouse event through the routed protocol.

    ``origin`` is the source the message arrived from (``None`` for
    client channels — legal only for refresh requests).  ``qualified``
    selects the source-qualified detail format shared by the multi-source
    and concurrent kernels; the single-source :class:`Simulation` facade
    keeps its historical unqualified strings.
    """
    kind = event_kind(message)
    if isinstance(message, UpdateNotification):
        if origin is None:
            raise ProtocolError("update notification arrived on a client channel")
        routed = validate_routed(
            algorithm, "on_update", list(algorithm.on_update(origin, message))
        )
        if qualified:
            detail = f"U{message.serial} from {origin}, {len(routed)} query(ies)"
        else:
            detail = f"U{message.serial} processed, {len(routed)} query(ies) sent"
    elif isinstance(message, UpdateBatch):
        if origin is None:
            raise ProtocolError("update batch arrived on a client channel")
        routed = validate_routed(
            algorithm,
            "on_update_batch",
            list(algorithm.on_update_batch(origin, message)),
        )
        span = f"U{message.first_serial}..U{message.serial} (k={len(message)})"
        if qualified:
            detail = f"{span} from {origin}, {len(routed)} query(ies)"
        else:
            detail = f"{span} processed, {len(routed)} query(ies) sent"
    elif isinstance(message, QueryAnswer):
        if origin is None:
            raise ProtocolError("query answer arrived on a client channel")
        routed = validate_routed(
            algorithm, "on_answer", list(algorithm.on_answer(origin, message))
        )
        if qualified:
            detail = (
                f"A(Q{message.query_id}) from {origin}, "
                f"{len(routed)} follow-up(s)"
            )
        else:
            detail = (
                f"A for Q{message.query_id} applied, "
                f"{len(routed)} follow-up query(ies)"
            )
    elif isinstance(message, RefreshRequest):
        routed = validate_routed(
            algorithm, "on_refresh", list(algorithm.on_refresh())
        )
        detail = (
            f"refresh #{message.serial} processed, {len(routed)} query(ies) sent"
        )
    else:  # pragma: no cover - event_kind already rejected it
        raise ProtocolError(f"warehouse received unknown message: {message!r}")
    # Drain dirty rows even when no serving cache is attached, so the
    # per-event dirty sets stay precise (never accumulate across events).
    return kind, detail, routed, frozenset(algorithm.dirty_keys())


def query_owner(query: Query, owners: Mapping[str, str]) -> str:
    """The single source owning every base relation the query reads."""
    found = set()
    for term in query.terms:
        for operand in term.operands:
            if operand.is_bound:
                continue
            relation = operand.source_relation
            try:
                found.add(owners[relation])
            except KeyError:
                raise ProtocolError(
                    f"no source owns relation {relation!r}"
                ) from None
    if len(found) != 1:
        raise ProtocolError(
            f"query reads relations of sources {sorted(found)!r}; "
            f"single-source algorithms need fragment routing — use a "
            f"multi-source algorithm (e.g. StrobeStyle) for spanning views"
        )
    return found.pop()


def resolve_destination(
    destination: Optional[str],
    request: QueryRequest,
    owners: Mapping[str, str],
    sole: Optional[str] = None,
) -> str:
    """Resolve an owner-routed (``None``) destination to a source name."""
    if destination is not None:
        return destination
    if sole is not None:
        return sole
    return query_owner(request.query, owners)


def receive_query_request(name: str, message: Message) -> QueryRequest:
    """Validate that a source-inbox message is a query request."""
    if not isinstance(message, QueryRequest):
        raise ProtocolError(f"source {name} received {message!r}")
    return message


def is_duplicate_answer(algorithm: WarehouseAlgorithm, message: Message) -> bool:
    """An answer whose query id is no longer pending (post-recovery race)."""
    return (
        isinstance(message, QueryAnswer)
        and message.query_id not in algorithm.pending_query_ids()
    )


def relation_owners(sources: Mapping[str, Source]) -> Dict[str, str]:
    """Map each relation to its owning source; reject shared relations."""
    from repro.errors import SimulationError

    owners: Dict[str, str] = {}
    for name, source in sources.items():
        for schema in source.schemas:
            if schema.name in owners:
                raise SimulationError(
                    f"relation {schema.name!r} owned by two sources"
                )
            owners[schema.name] = name
    return owners
