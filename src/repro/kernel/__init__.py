"""The shared execution kernel behind every driver.

One message pump, three frontends: the synchronous :class:`SyncKernel`
(driven by schedules — :class:`repro.simulation.driver.Simulation` and
:class:`repro.multisource.driver.MultiSourceSimulation` are thin facades
over it), the asyncio actors of :mod:`repro.runtime`, and WAL replay in
:mod:`repro.durability.recovery`.  All of them deliver messages through
:func:`repro.kernel.dispatch.dispatch_event`, so an algorithm sees the
identical atomic-event protocol no matter which kernel runs it.
"""

from repro.kernel.conformance import replay_concurrent
from repro.kernel.dispatch import (
    dispatch_event,
    event_kind,
    is_duplicate_answer,
    query_owner,
    receive_query_request,
)
from repro.kernel.sync import CLIENT, REFRESH, SyncKernel

__all__ = [
    "CLIENT",
    "REFRESH",
    "SyncKernel",
    "dispatch_event",
    "event_kind",
    "is_duplicate_answer",
    "query_owner",
    "receive_query_request",
    "replay_concurrent",
]
