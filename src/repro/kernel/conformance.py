"""Cross-kernel conformance: replay a concurrent run synchronously.

``run_concurrent`` records every recordable action — source updates,
source answers, atomic warehouse events (tagged with the channel they
consumed), client refreshes — as a global ``action_log`` of kernel
action strings.  :func:`replay_concurrent` feeds that log to a fresh
:class:`~repro.kernel.sync.SyncKernel` over twin sources and a twin
algorithm.  Because both kernels dispatch through
:func:`repro.kernel.dispatch.dispatch_event` and share the per-source
FIFO discipline, the replay must reproduce the concurrent run's trace
event-for-event — the conformance suite asserts exactly that.

Crash/recovery runs are refused: a crash abandons in-memory state the
synchronous kernel has no action for, so those executions are compared
through the recovery tests instead.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Sequence

from repro.core.protocol import WarehouseAlgorithm
from repro.errors import SimulationError
from repro.kernel.sync import SyncKernel
from repro.source.base import Source
from repro.source.updates import Update

__all__ = ["replay_concurrent"]


def replay_concurrent(
    action_log: Sequence[str],
    sources: Mapping[str, Source],
    algorithm: WarehouseAlgorithm,
    workloads: Mapping[str, Sequence[Update]],
) -> SyncKernel:
    """Replay a concurrent run's action log on the synchronous kernel.

    Parameters
    ----------
    action_log:
        ``RuntimeResult.action_log`` from the run to reproduce.
    sources:
        Twin sources, loaded with the same *initial* data the concurrent
        run started from (not the post-run state).
    algorithm:
        A twin algorithm, initialized like the concurrent run's.
    workloads:
        ``source name -> updates`` exactly as the concurrent run
        partitioned them; the log's ``update:<source>`` order rebuilds
        the global interleaving.
    """
    refused = {"crash", "recover"}
    for entry in action_log:
        if entry in refused:
            raise SimulationError(
                "cannot replay a run with crash/recovery markers — "
                "the synchronous kernel has no action for abandoned state"
            )
    remaining: Dict[str, Deque[Update]] = {
        name: deque(updates) for name, updates in workloads.items()
    }
    global_workload: List[Update] = []
    for entry in action_log:
        if entry.startswith("update:"):
            name = entry.split(":", 1)[1]
            try:
                global_workload.append(remaining[name].popleft())
            except (KeyError, IndexError):
                raise SimulationError(
                    f"action log expects an update at source {name!r} "
                    f"beyond its workload"
                ) from None
    kernel = SyncKernel(sources, algorithm, global_workload)
    for entry in action_log:
        kernel.step("update" if entry.startswith("update:") else entry)
    return kernel
