"""The synchronous execution kernel: one pump for every sync driver.

:class:`SyncKernel` owns the per-source FIFO channel pairs, executes the
workload, evaluates source queries, and feeds warehouse messages through
:func:`repro.kernel.dispatch.dispatch_event` — the same atomic events,
trace records, and routing the asyncio runtime performs.  The historical
:class:`repro.simulation.driver.Simulation` (one source, legacy action
names) and :class:`repro.multisource.driver.MultiSourceSimulation`
facades subclass it; schedules drive either through :meth:`run`.

Actions (all strings, chooseable by a schedule):

- ``"update"``             — execute the next workload item at its owning
  source and send the notification (a :data:`REFRESH` marker becomes a
  client refresh request instead);
- ``"answer:<source>"``    — that source evaluates its oldest pending
  query and sends the answer;
- ``"warehouse:<name>"``   — the warehouse processes the oldest message
  on ``<name>``'s channel (``<name>`` is a source or a client); with
  ``batch_k > 1`` a run of up to ``batch_k`` consecutive update
  notifications is coalesced into one atomic
  :class:`~repro.messaging.messages.UpdateBatch` event;
- ``"warehouse:<name>@<n>"`` — as above but coalescing *exactly* ``n``
  notifications (how conformance replay reproduces a concurrent run's
  batching decisions from its action log);
- ``"refresh:<client>"``   — client ``<client>`` enqueues a refresh
  request on its own warehouse channel (used by conformance replay).
"""

from __future__ import annotations

import logging
from collections import deque
from typing import (
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.core.protocol import WarehouseAlgorithm
from repro.errors import SimulationError
from repro.kernel.dispatch import (
    dispatch_event,
    relation_owners,
    resolve_destination,
)
from repro.messaging.channel import FifoChannel
from repro.messaging.messages import (
    QueryAnswer,
    QueryRequest,
    RefreshRequest,
    UpdateBatch,
    UpdateNotification,
)
from repro.relational.bag import SignedBag
from repro.relational.expressions import Query
from repro.simulation.trace import C_REF, S_QU, S_UP, Trace
from repro.source.base import Source
from repro.source.updates import Update

logger = logging.getLogger("repro.kernel")

#: Name of the implicit warehouse client that issues the refresh
#: requests a :data:`REFRESH` workload marker stands for in multi-source
#: runs.  Reserved: no source may use it.
CLIENT = "client"


class _RefreshMarker:
    """Workload sentinel: a warehouse client reads the view here.

    Place :data:`REFRESH` in a workload to model deferred/periodic
    maintenance: the kernel injects a :class:`RefreshRequest` into the
    warehouse's inbox instead of executing a source update.
    """

    def __repr__(self) -> str:
        return "REFRESH"


#: The refresh sentinel (a singleton).
REFRESH = _RefreshMarker()

#: What a kernel workload may contain: source updates interleaved with
#: client refresh markers.
WorkloadItem = Union[Update, _RefreshMarker]


class Schedule(Protocol):
    """Structural interface of the simulation schedules driving :meth:`run`."""

    def choose(self, available: Sequence[str]) -> str: ...


class Recorder(Protocol):
    """Structural interface of the cost recorders the kernel reports to."""

    def record_request(self, request: QueryRequest) -> None: ...

    def record_answer(self, answer: QueryAnswer) -> None: ...

    def record_evaluation(self, query: Query, source: Source) -> None: ...


class ServingCacheLike(Protocol):
    """Structural interface of the serving cache (``repro.serving``).

    The kernel only *streams invalidations*; it never reads through the
    cache itself (reads stay client-side), so this is the whole contract
    and keeps ``repro.kernel`` free of a serving-layer import.
    """

    def invalidate(
        self, keys: Iterable[Tuple[str, Tuple[object, ...]]]
    ) -> None: ...


class SyncKernel:
    """One warehouse, N sources, per-source FIFO ordering.

    Parameters
    ----------
    sources:
        ``name -> Source``; relation names must be globally unique.
    algorithm:
        Any routed :class:`~repro.core.protocol.WarehouseAlgorithm`
        (including :class:`~repro.warehouse.catalog.WarehouseCatalog`).
        The kernel binds the relation-owner map before the run starts.
    workload:
        Updates in global order, each routed to its owning source;
        :data:`REFRESH` markers become client refresh requests.
    recorder:
        Optional cost recorder (``record_request`` / ``record_answer`` /
        ``record_evaluation``); when it can size messages it doubles as
        the channel sizer so the B metric shows up in ``sent_bytes``.
    qualified:
        Whether trace details carry source qualifiers.  The concurrent
        runtime always qualifies; the single-source ``Simulation`` facade
        keeps its historical unqualified strings.
    cache:
        Optional :class:`repro.serving.ServingCache`.  When set, every
        warehouse event streams its dirtied view keys into the cache, so
        reads served through the cache between steps see precise
        maintenance-driven invalidation.
    batch_k:
        Maximum run of consecutive update notifications a
        ``warehouse:<name>`` step coalesces into one atomic
        :class:`~repro.messaging.messages.UpdateBatch` event.  The
        default 1 never constructs a batch — byte-for-byte the legacy
        per-update protocol.
    """

    def __init__(
        self,
        sources: Mapping[str, Source],
        algorithm: WarehouseAlgorithm,
        workload: Sequence[WorkloadItem],
        recorder: Optional[Recorder] = None,
        qualified: bool = True,
        cache: Optional["ServingCacheLike"] = None,
        batch_k: int = 1,
    ) -> None:
        self.sources = dict(sources)
        if not self.sources:
            raise SimulationError("the kernel needs at least one source")
        if CLIENT in self.sources:
            raise SimulationError(f"source name {CLIENT!r} is reserved for clients")
        if batch_k < 1:
            raise SimulationError(f"batch_k must be >= 1, got {batch_k}")
        self.algorithm = algorithm
        self.recorder = recorder
        self._qualified = qualified
        self.cache = cache
        self.batch_k = batch_k
        self._updates: Deque[WorkloadItem] = deque(workload)
        self.owners = relation_owners(self.sources)
        algorithm.bind_owners(self.owners)
        #: The sole source's name in single-source runs (owner routing
        #: shortcut + legacy refresh-on-the-source-channel behavior).
        self._sole = next(iter(self.sources)) if len(self.sources) == 1 else None
        sizer = getattr(recorder, "message_size", None)
        #: name -> channel into the warehouse (sources and clients).
        self.inbound: Dict[str, FifoChannel] = {
            name: FifoChannel(f"{name}->warehouse", sizer=sizer)
            for name in self.sources
        }
        #: source name -> channel from the warehouse back to that source.
        self.outbound: Dict[str, FifoChannel] = {
            name: FifoChannel(f"warehouse->{name}", sizer=sizer)
            for name in self.sources
        }
        self._client_serials: Dict[str, int] = {}
        self.trace = Trace()
        self._serial = 0
        self._refresh_serial = 0
        #: Per-source state histories: name -> [state after i updates at
        #: that source].  Used by the cut-consistency checker.
        self.per_source_states: Dict[str, List[Dict[str, SignedBag]]] = {
            name: [source.snapshot()] for name, source in self.sources.items()
        }
        # ss_0 and ws_0: the initial states.
        self.trace.record_source_state(self._snapshot())
        self.trace.record_view_state(algorithm.view_state())

    def _snapshot(self) -> Dict[str, SignedBag]:
        combined: Dict[str, SignedBag] = {}
        for source in self.sources.values():
            combined.update(source.snapshot())
        return combined

    def _client_channel(self, name: str) -> FifoChannel:
        if name in self.sources:
            raise SimulationError(f"client name {name!r} collides with a source")
        channel = self.inbound.get(name)
        if channel is None:
            channel = FifoChannel(f"{name}->warehouse")
            self.inbound[name] = channel
        return channel

    # ------------------------------------------------------------------ #
    # Action availability
    # ------------------------------------------------------------------ #

    def available_actions(self) -> List[str]:
        actions: List[str] = []
        if self._updates:
            actions.append("update")
        for name in sorted(self.sources):
            if not self.outbound[name].is_empty():
                actions.append(f"answer:{name}")
            if not self.inbound[name].is_empty():
                actions.append(f"warehouse:{name}")
        for name in sorted(self.inbound):
            if name not in self.sources and not self.inbound[name].is_empty():
                actions.append(f"warehouse:{name}")
        return actions

    def is_done(self) -> bool:
        return not self.available_actions()

    # ------------------------------------------------------------------ #
    # Primitive actions
    # ------------------------------------------------------------------ #

    def step(self, action: str) -> None:
        if action == "update":
            self._do_update()
        elif action.startswith("answer:"):
            self._do_answer(action.split(":", 1)[1])
        elif action.startswith("warehouse:"):
            target = action.split(":", 1)[1]
            if "@" in target:
                # Replay form: coalesce exactly n notifications (how a
                # logged concurrent run's batching decisions replay).
                name, _, count = target.rpartition("@")
                self._do_warehouse(name, exactly=int(count))
            else:
                self._do_warehouse(target)
        elif action.startswith("refresh:"):
            self._do_refresh(action.split(":", 1)[1])
        else:
            raise SimulationError(f"unknown action {action!r}")

    def _do_update(self) -> None:
        """``S_up``: execute the next update, then notify the warehouse.

        A :data:`REFRESH` workload item is a warehouse-client read rather
        than a source update: it skips the sources entirely and enqueues
        a refresh request on the warehouse's inbox — the sole source's
        channel in single-source runs (the historical FIFO coupling with
        update notifications), the implicit :data:`CLIENT` channel
        otherwise.
        """
        if not self._updates:
            raise SimulationError("no workload updates remain")
        update = self._updates.popleft()
        if isinstance(update, _RefreshMarker):
            self._refresh_serial += 1
            logger.debug("client refresh #%d requested", self._refresh_serial)
            if self._sole is not None:
                self.trace.record_event(C_REF, f"refresh #{self._refresh_serial}")
                self.inbound[self._sole].send(RefreshRequest(self._refresh_serial))
            else:
                self.trace.record_event(
                    C_REF, f"{CLIENT} refresh #{self._refresh_serial}"
                )
                self._client_channel(CLIENT).send(
                    RefreshRequest(self._refresh_serial)
                )
            return
        owner = self.owners.get(update.relation)
        if owner is None:
            raise SimulationError(f"no source owns relation {update.relation!r}")
        self.sources[owner].apply_update(update)
        logger.debug("source %s executed %r", owner, update)
        self._serial += 1
        if self._qualified:
            self.trace.record_event(S_UP, f"U{self._serial}@{owner} = {update!r}")
        else:
            self.trace.record_event(S_UP, f"U{self._serial} = {update!r}")
        self.trace.record_source_state(self._snapshot())
        self.per_source_states[owner].append(self.sources[owner].snapshot())
        self.inbound[owner].send(UpdateNotification(update, self._serial))

    def _do_answer(self, name: str) -> None:
        """``S_qu``: the source receives the oldest query, evaluates it on
        its current state, and sends the answer."""
        message = self.outbound[name].receive()
        if not isinstance(message, QueryRequest):
            raise SimulationError(f"source {name} received {message!r}")
        answer = self.sources[name].evaluate(message.query)
        logger.debug(
            "source %s answered Q%d with %d tuple(s)",
            name,
            message.query_id,
            answer.total_count(),
        )
        if self.recorder is not None:
            self.recorder.record_evaluation(message.query, self.sources[name])
        if self._qualified:
            self.trace.record_event(
                S_QU,
                f"{name}: Q{message.query_id} -> {answer.total_count()} tuple(s)",
            )
        else:
            self.trace.record_event(
                S_QU, f"Q{message.query_id} -> {answer.total_count()} tuple(s)"
            )
        reply = QueryAnswer(message.query_id, answer)
        if self.recorder is not None:
            self.recorder.record_answer(reply)
        self.inbound[name].send(reply)

    def _do_warehouse(self, name: str, exactly: Optional[int] = None) -> None:
        """``W_up`` / ``W_ans`` / ``W_ref``: process the oldest message
        from ``name``'s channel atomically.

        With ``batch_k > 1`` (or an explicit ``exactly`` count from a
        replayed ``warehouse:<name>@<n>`` action) a run of consecutive
        update notifications at the head of the channel is coalesced into
        one :class:`UpdateBatch` and dispatched as a single event.
        """
        channel = self.inbound[name]
        message = channel.receive()
        limit = exactly if exactly is not None else self.batch_k
        if limit > 1 and isinstance(message, UpdateNotification):
            members = [message]
            while len(members) < limit and isinstance(
                channel.peek(), UpdateNotification
            ):
                members.append(channel.receive())
            if exactly is not None and len(members) != exactly:
                raise SimulationError(
                    f"replay asked to batch {exactly} notifications from "
                    f"{name!r} but only {len(members)} were available"
                )
            if len(members) > 1:
                message = UpdateBatch(tuple(members))
        elif exactly is not None and exactly > 1:
            raise SimulationError(
                f"replay asked to batch {exactly} notifications from "
                f"{name!r} but the channel head is {message!r}"
            )
        origin = name if name in self.sources else None
        kind, detail, routed, dirtied = dispatch_event(
            self.algorithm, origin, message, qualified=self._qualified
        )
        if self.cache is not None and dirtied:
            self.cache.invalidate(dirtied)
        self.trace.record_event(kind, detail)
        for destination, request in routed:
            if self.recorder is not None:
                self.recorder.record_request(request)
            target = resolve_destination(
                destination, request, self.owners, sole=self._sole
            )
            self.outbound[target].send(request)
        self.trace.record_view_state(self.algorithm.view_state())

    def _do_refresh(self, client: str) -> None:
        """``C_ref``: a named client enqueues a refresh request."""
        serial = self._client_serials.get(client, 0) + 1
        self._client_serials[client] = serial
        self.trace.record_event(C_REF, f"{client} refresh #{serial}")
        self._client_channel(client).send(RefreshRequest(serial))

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #

    def run(self, schedule: Schedule, max_steps: int = 1_000_000) -> Trace:
        """Run to quiescence under ``schedule``; returns the trace."""
        steps = 0
        while True:
            available = self.available_actions()
            if not available:
                break
            if steps >= max_steps:
                raise SimulationError(
                    f"simulation exceeded {max_steps} steps without quiescing"
                )
            self.step(schedule.choose(available))
            steps += 1
        if not self.algorithm.is_quiescent():
            # Channels are drained and the workload is exhausted, yet the
            # algorithm still holds buffered work: a deadlocked algorithm
            # (or an RV with a partial period, which callers opt into by
            # choosing a non-dividing period).
            if getattr(self.algorithm, "uqs", None):
                raise SimulationError(
                    f"algorithm {self.algorithm.name!r} still has pending "
                    f"queries after quiescence: {sorted(self.algorithm.uqs)}"
                )
        return self.trace
