"""Workload construction: schemas, data, update streams, paper scenarios."""

from repro.workloads.example6 import (
    Example6Setup,
    build_example6,
    example6_schemas,
    example6_view,
    selectivity_shift,
)
from repro.workloads.paper_examples import PAPER_EXAMPLES, Scenario
from repro.workloads.random_gen import (
    ZipfSampler,
    random_rows,
    random_workload,
    zipf_read_workload,
)

__all__ = [
    "Example6Setup",
    "PAPER_EXAMPLES",
    "Scenario",
    "ZipfSampler",
    "build_example6",
    "example6_schemas",
    "example6_view",
    "random_rows",
    "random_workload",
    "selectivity_shift",
    "zipf_read_workload",
]
