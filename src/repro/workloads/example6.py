"""Example 6 — the paper's representative performance scenario.

Base relation schema:  ``r1(W, X), r2(X, Y), r3(Y, Z)``
View definition:       ``V = pi_{W,Z}(sigma_cond(r1 |x| r2 |x| r3))``
Condition:             a comparison between ``W`` and ``Z`` (e.g. W > Z),
                       so the selection cannot be pushed below the join —
                       this matters for the I/O analysis.
Updates:               single-tuple inserts hitting the three relations
                       with equal frequency.

Data is generated to honor Table 1's parameters:

- each relation holds ``C`` tuples;
- every join-attribute value appears exactly ``J`` times per relation
  (join factor), drawn from a domain of ``C / J`` distinct values;
- ``W`` and ``Z`` are uniform over a large domain, shifted so that
  ``P(W + shift > Z)`` equals the selection factor ``sigma``
  (:func:`selectivity_shift`).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.costmodel.parameters import PaperParameters
from repro.relational.conditions import Attr, Comparison, Condition
from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.source.updates import Update, insert
from repro.workloads.random_gen import ZipfSampler

#: Domain size for the W and Z attributes.
VALUE_DOMAIN = 1000


def example6_schemas() -> List[RelationSchema]:
    """``r1(W, X), r2(X, Y), r3(Y, Z)``."""
    return [
        RelationSchema("r1", ("W", "X")),
        RelationSchema("r2", ("X", "Y")),
        RelationSchema("r3", ("Y", "Z")),
    ]


def selectivity_shift(sigma: float, domain: int = VALUE_DOMAIN) -> int:
    """Shift ``a`` such that ``P(W + a > Z) ~ sigma`` for iid uniform W, Z.

    With W, Z uniform over ``[0, domain)``, ``P(W - Z > t)`` is the tail of
    a triangular distribution; inverting it gives::

        sigma <= 1/2:  a = -domain * (1 - sqrt(2 * sigma))
        sigma >  1/2:  a =  domain * (1 - sqrt(2 * (1 - sigma)))
    """
    if not 0.0 <= sigma <= 1.0:
        raise ValueError(f"sigma must be in [0, 1], got {sigma}")
    if sigma <= 0.5:
        return -round(domain * (1.0 - math.sqrt(2.0 * sigma)))
    return round(domain * (1.0 - math.sqrt(2.0 * (1.0 - sigma))))


def example6_view(params: PaperParameters = None) -> View:
    """The Example 6 view: ``pi_{W,Z}(sigma_{W>Z}(r1 |x| r2 |x| r3))``.

    The condition is fixed at ``W > Z``; the *data generator* shifts the W
    column by :func:`selectivity_shift` so the condition selects with
    probability ``sigma`` (arithmetic inside conditions is out of our
    comparison grammar, and shifting the data is equivalent).
    """
    condition: Condition = Comparison(Attr("W"), ">", Attr("Z"))
    return View.natural_join("V", example6_schemas(), ["W", "Z"], condition)


def _join_column(count: int, distinct: int, rng: random.Random) -> List[int]:
    """``count`` values over ``distinct`` symbols, each ~``count/distinct``
    times, in random order — a constant-join-factor column."""
    per = count // distinct
    values: List[int] = []
    for symbol in range(distinct):
        values.extend([symbol] * per)
    while len(values) < count:
        values.append(rng.randrange(distinct))
    rng.shuffle(values)
    return values


class Example6Setup:
    """Everything needed to run the Example 6 scenario at scale.

    Attributes
    ----------
    schemas, view:
        The three base relations and the maintained view.
    initial:
        relation name -> list of rows (the pre-loaded base data).
    workload:
        ``k`` single-tuple inserts cycling over r1, r2, r3.
    params:
        The Table 1 parameters used to generate the data.
    """

    def __init__(
        self,
        schemas: List[RelationSchema],
        view: View,
        initial: Dict[str, List[Tuple[object, ...]]],
        workload: List[Update],
        params: PaperParameters,
    ) -> None:
        self.schemas = schemas
        self.view = view
        self.initial = initial
        self.workload = workload
        self.params = params


def build_example6(
    params: PaperParameters,
    k: int,
    seed: int = 0,
    hot_fraction: float = 0.0,
    key_theta: Optional[float] = None,
) -> Example6Setup:
    """Generate data and a k-insert workload matching ``params``.

    The W column is shifted by :func:`selectivity_shift` so that the fixed
    condition ``W > Z`` selects with probability ``sigma``.  Skewing the
    inserted tuples' join keys toward hot values is the regime where
    compensating queries return real tuples (uniform random keys rarely
    collide within a run); ``key_theta`` draws keys Zipf-distributed over
    the join domain via :class:`~repro.workloads.random_gen.ZipfSampler`
    (``key_theta=0.0`` is uniform and consumes the RNG stream exactly like
    the default).  ``hot_fraction`` is the legacy coin-flip skew, kept for
    the analytic worst-case comparisons; it is ignored when ``key_theta``
    is given.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    rng = random.Random(seed)
    C, J = params.C, params.J
    distinct = max(1, C // J)
    shift = selectivity_shift(params.sigma)
    sampler = (
        ZipfSampler(distinct, key_theta, rng=rng) if key_theta is not None else None
    )

    def draw_key() -> int:
        if sampler is not None:
            return sampler.sample()
        return _key(rng, distinct, hot_fraction)

    def draw_w() -> int:
        return rng.randrange(VALUE_DOMAIN) + shift

    def draw_z() -> int:
        return rng.randrange(VALUE_DOMAIN)

    x_r1 = _join_column(C, distinct, rng)
    x_r2 = _join_column(C, distinct, rng)
    y_r2 = _join_column(C, distinct, rng)
    y_r3 = _join_column(C, distinct, rng)
    initial: Dict[str, List[Tuple[object, ...]]] = {
        "r1": [(draw_w(), x_r1[i]) for i in range(C)],
        "r2": [(x_r2[i], y_r2[i]) for i in range(C)],
        "r3": [(y_r3[i], draw_z()) for i in range(C)],
    }

    workload: List[Update] = []
    for index in range(k):
        relation = ("r1", "r2", "r3")[index % 3]
        if relation == "r1":
            row: Tuple[object, ...] = (draw_w(), draw_key())
        elif relation == "r2":
            row = (draw_key(), draw_key())
        else:
            row = (draw_key(), draw_z())
        workload.append(insert(relation, row))

    return Example6Setup(
        example6_schemas(), example6_view(params), initial, workload, params
    )


def _key(rng: random.Random, distinct: int, hot_fraction: float) -> int:
    """A join-key value; with probability ``hot_fraction`` the hot key 0.

    Hot-key skew is what makes ECA's *compensating* terms actually match
    tuples: concurrent updates sharing join keys derive overlapping view
    tuples, so the worst-case compensation traffic of Appendix D is
    realized instead of vacuous (see EXPERIMENTS.md, E7/E12).
    """
    if hot_fraction > 0.0 and rng.random() < hot_fraction:
        return 0
    return rng.randrange(distinct)
