"""Randomized workloads for property-based and stress testing.

Workloads are pre-generated (the simulation replays them), so the
generator tracks a shadow copy of the base relations to guarantee deletes
always target existing tuples, and — when ``respect_keys`` — that inserts
never duplicate a declared key (the integrity assumption ECA-Key relies
on).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple, TypeVar

from repro.relational.bag import SignedBag
from repro.relational.schema import RelationSchema
from repro.source.updates import Update, delete, insert

Row = Tuple[object, ...]

T = TypeVar("T")


class ZipfSampler:
    """Seeded Zipf-distributed rank sampler: ``P(rank i) ∝ 1/(i+1)^theta``.

    ``theta`` controls skew: 0 is uniform (and is special-cased to a
    single ``randrange`` draw so uniform sampling consumes the RNG stream
    exactly like the historical code paths it replaces), ~1 is classic
    web-like skew, and large values collapse onto rank 0 — the hot-key
    regime.  Sampling is inverse-CDF over a precomputed table, so a given
    ``(n, theta, seed)`` triple always yields the same rank sequence
    (RPR002 determinism).
    """

    def __init__(
        self,
        n: int,
        theta: float,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"need at least one rank, got n={n}")
        if theta < 0:
            raise ValueError(f"zipf theta must be >= 0, got {theta}")
        self.n = n
        self.theta = theta
        #: Callers embedding the sampler in a larger generator pass their
        #: own ``rng`` so one seed governs the whole artifact.
        self._rng = rng if rng is not None else random.Random(seed)
        self._cdf: List[float] = []
        if theta > 0:
            total = 0.0
            weights = [1.0 / (i + 1) ** theta for i in range(n)]
            norm = sum(weights)
            for weight in weights:
                total += weight / norm
                self._cdf.append(total)
            self._cdf[-1] = 1.0  # guard against float drift

    def sample(self) -> int:
        """The next rank in ``[0, n)``."""
        if self.theta == 0:
            return self._rng.randrange(self.n)
        u = self._rng.random()
        # Binary search the CDF (n is small; bisect avoids an import).
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def choose(self, items: Sequence[T]) -> T:
        """Pick from ``items`` with rank 0 = ``items[0]`` the hottest."""
        if len(items) != self.n:
            raise ValueError(
                f"sampler built for {self.n} ranks, got {len(items)} items"
            )
        return items[self.sample()]


def zipf_read_workload(
    keys: Sequence[T], count: int, theta: float = 1.0, seed: int = 0
) -> List[T]:
    """``count`` reads over ``keys`` with Zipf-distributed popularity.

    Rank order is shuffled once (seeded) so the hot key is not always the
    lexicographically-first one; the result is fully determined by
    ``(tuple(keys), count, theta, seed)``.
    """
    if not keys:
        raise ValueError("cannot generate reads over an empty key universe")
    rng = random.Random(seed)
    ranked = list(keys)
    rng.shuffle(ranked)
    sampler = ZipfSampler(len(ranked), theta, seed=rng.randrange(2**31))
    return [ranked[sampler.sample()] for _ in range(count)]


def random_rows(
    schema: RelationSchema,
    count: int,
    seed: int = 0,
    domain: int = 6,
    respect_keys: bool = False,
) -> List[Row]:
    """``count`` random rows with small attribute domains (join-friendly)."""
    rng = random.Random(seed)
    rows: List[Row] = []
    used_keys: Set[Row] = set()
    attempts = 0
    while len(rows) < count:
        row = tuple(rng.randrange(domain) for _ in schema.attributes)
        if respect_keys and schema.key is not None:
            key = schema.key_of(row)
            if key in used_keys:
                attempts += 1
                if attempts > 100 * count + 100:
                    break  # domain exhausted; return what we have
                continue
            used_keys.add(key)
        rows.append(row)
    return rows


def random_workload(
    schemas: Sequence[RelationSchema],
    k: int,
    seed: int = 0,
    initial: Optional[Dict[str, Sequence[Row]]] = None,
    delete_ratio: float = 0.4,
    domain: int = 6,
    respect_keys: bool = False,
) -> List[Update]:
    """A stream of ``k`` inserts/deletes that is valid against ``initial``.

    Deletes pick a tuple currently present (accounting for earlier updates
    in the stream); when no tuple exists an insert is generated instead.
    """
    if not 0.0 <= delete_ratio <= 1.0:
        raise ValueError(f"delete_ratio must be in [0, 1], got {delete_ratio}")
    rng = random.Random(seed)
    shadow: Dict[str, SignedBag] = {s.name: SignedBag() for s in schemas}
    keys_in_use: Dict[str, Set[Row]] = {s.name: set() for s in schemas}
    by_name = {s.name: s for s in schemas}
    if initial:
        for name, rows in initial.items():
            for row in rows:
                shadow[name].add(tuple(row), 1)
                if by_name[name].key is not None:
                    keys_in_use[name].add(by_name[name].key_of(row))

    def fresh_row(schema: RelationSchema) -> Optional[Row]:
        for _ in range(200):
            row = tuple(rng.randrange(domain) for _ in schema.attributes)
            if respect_keys and schema.key is not None:
                if schema.key_of(row) in keys_in_use[schema.name]:
                    continue
            return row
        return None

    workload: List[Update] = []
    while len(workload) < k:
        schema = by_name[rng.choice([s.name for s in schemas])]
        bag = shadow[schema.name]
        want_delete = rng.random() < delete_ratio and not bag.is_empty()
        if want_delete:
            row = rng.choice(list(bag.rows()))
            bag.add(row, -1)
            if schema.key is not None and bag.multiplicity(row) == 0:
                keys_in_use[schema.name].discard(schema.key_of(row))
            workload.append(delete(schema.name, row))
        else:
            row = fresh_row(schema)
            if row is None:
                continue  # key domain exhausted for this relation; retry
            bag.add(row, 1)
            if schema.key is not None:
                keys_in_use[schema.name].add(schema.key_of(row))
            workload.append(insert(schema.name, row))
    return workload
