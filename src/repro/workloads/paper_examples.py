"""The paper's worked examples (1-5 and Appendix A's 7-9) as scenarios.

Each :class:`Scenario` bundles the base schemas, initial data, view
definition, update stream, the *exact event order* the paper walks
through (as a scripted schedule), and the expected final view.  The
integration tests replay every scenario and compare against the paper's
stated outcomes — including the *incorrect* outcomes of the anomalous
baseline in Examples 2 and 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.relational.schema import RelationSchema
from repro.relational.views import View
from repro.simulation.schedules import ANSWER, UPDATE, WAREHOUSE
from repro.source.updates import Update, delete, insert

Row = Tuple[object, ...]

# Shorthand for building scripts.
U, W, A = UPDATE, WAREHOUSE, ANSWER


class Scenario:
    """One worked example from the paper."""

    def __init__(
        self,
        name: str,
        paper_ref: str,
        algorithm: str,
        schemas: List[RelationSchema],
        view: View,
        initial: Dict[str, List[Row]],
        updates: List[Update],
        actions: List[str],
        expected_final: List[Row],
        description: str = "",
        algorithm_options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.paper_ref = paper_ref
        #: Which algorithm the paper runs in this example.
        self.algorithm = algorithm
        self.algorithm_options = dict(algorithm_options or {})
        self.schemas = schemas
        self.view = view
        self.initial = initial
        self.updates = updates
        #: Scripted schedule reproducing the paper's event order.
        self.actions = actions
        #: The final view contents the paper reports (rows with duplicates).
        self.expected_final = sorted(expected_final)
        self.description = description

    def __repr__(self) -> str:
        return f"Scenario({self.name}, {self.paper_ref}, algorithm={self.algorithm})"


def _two_relation_schemas() -> List[RelationSchema]:
    return [RelationSchema("r1", ("W", "X")), RelationSchema("r2", ("X", "Y"))]


def _keyed_schemas() -> List[RelationSchema]:
    return [
        RelationSchema("r1", ("W", "X"), key=("W",)),
        RelationSchema("r2", ("X", "Y"), key=("Y",)),
    ]


def _three_relation_schemas() -> List[RelationSchema]:
    return [
        RelationSchema("r1", ("W", "X")),
        RelationSchema("r2", ("X", "Y")),
        RelationSchema("r3", ("Y", "Z")),
    ]


def _view_w(schemas: List[RelationSchema]) -> View:
    return View.natural_join("V", schemas, ["W"])


def example_1() -> Scenario:
    """Correct maintenance: one update, fully processed before anything else."""
    schemas = _two_relation_schemas()
    return Scenario(
        name="example-1",
        paper_ref="Section 1.1, Example 1",
        algorithm="basic",
        schemas=schemas,
        view=_view_w(schemas),
        initial={"r1": [(1, 2)], "r2": [(2, 4)]},
        updates=[insert("r2", (2, 3))],
        actions=[U, W, A, W],
        expected_final=[(1,), (1,)],
        description=(
            "A single insert with no concurrent activity: even the naive "
            "incremental algorithm produces the correct view ([1],[1])."
        ),
    )


def example_2() -> Scenario:
    """The insertion anomaly: the basic algorithm double-counts [4]."""
    schemas = _two_relation_schemas()
    return Scenario(
        name="example-2",
        paper_ref="Section 1.1, Example 2",
        algorithm="basic",
        schemas=schemas,
        view=_view_w(schemas),
        initial={"r1": [(1, 2)], "r2": []},
        updates=[insert("r2", (2, 3)), insert("r1", (4, 2))],
        actions=[U, W, U, W, A, W, A, W],
        expected_final=[(1,), (4,), (4,)],
        description=(
            "Q1 is evaluated after U2, so its answer ([1],[4]) already "
            "contains U2's contribution; Q2's answer ([4]) duplicates it. "
            "The correct view is ([1],[4])."
        ),
    )


def example_3() -> Scenario:
    """The deletion anomaly: the basic algorithm strands [1,3]."""
    schemas = _two_relation_schemas()
    return Scenario(
        name="example-3",
        paper_ref="Section 1.1, Example 3",
        algorithm="basic",
        schemas=schemas,
        view=View.natural_join("V", schemas, ["W", "Y"]),
        initial={"r1": [(1, 2)], "r2": [(2, 3)]},
        updates=[delete("r1", (1, 2)), delete("r2", (2, 3))],
        actions=[U, W, U, W, A, W, A, W],
        expected_final=[(1, 3)],
        description=(
            "Both deletion queries are evaluated on already-empty "
            "relations, return empty answers, and the stale tuple [1,3] "
            "survives.  The correct view is empty."
        ),
    )


def example_4() -> Scenario:
    """ECA handling three insertions into three different relations."""
    schemas = _three_relation_schemas()
    return Scenario(
        name="example-4",
        paper_ref="Section 5.3, Example 4",
        algorithm="eca",
        schemas=schemas,
        view=_view_w(schemas),
        initial={"r1": [(1, 2)], "r2": [], "r3": []},
        updates=[
            insert("r1", (4, 2)),
            insert("r3", (5, 3)),
            insert("r2", (2, 5)),
        ],
        actions=[U, W, U, W, U, W, A, W, A, W, A, W],
        expected_final=[(1,), (4,)],
        description=(
            "All three updates reach the warehouse before any answer; each "
            "query compensates the pending ones, and the final COLLECT "
            "install yields the correct ([1],[4])."
        ),
    )


def example_5() -> Scenario:
    """ECA-Key: local deletes, uncompensated inserts, duplicate dropping."""
    schemas = _keyed_schemas()
    return Scenario(
        name="example-5",
        paper_ref="Section 5.4, Example 5",
        algorithm="eca-key",
        schemas=schemas,
        view=View.natural_join("V", schemas, ["W", "Y"]),
        initial={"r1": [(1, 2)], "r2": [(2, 3)]},
        updates=[
            insert("r2", (2, 4)),
            insert("r1", (3, 2)),
            delete("r1", (1, 2)),
        ],
        actions=[U, W, U, W, U, W, A, W, A, W],
        expected_final=[(3, 3), (3, 4)],
        description=(
            "W and Y are keys.  The delete is handled at the warehouse by "
            "key-delete; insert answers arrive late and the duplicate "
            "[3,4] is recognized and dropped."
        ),
    )


def example_7() -> Scenario:
    """Appendix A, Example 7: same updates as Example 4, different order."""
    schemas = _three_relation_schemas()
    return Scenario(
        name="example-7",
        paper_ref="Appendix A, Example 7",
        algorithm="eca",
        schemas=schemas,
        view=_view_w(schemas),
        initial={"r1": [(1, 2)], "r2": [], "r3": []},
        updates=[
            insert("r1", (4, 2)),
            insert("r3", (5, 3)),
            insert("r2", (2, 5)),
        ],
        actions=[U, W, U, W, A, W, U, W, A, W, A, W],
        expected_final=[(1,), (4,)],
        description=(
            "Q1's (empty) answer arrives before U3 is even received; "
            "compensation chains still produce the correct ([1],[4])."
        ),
    )


def example_8() -> Scenario:
    """Appendix A, Example 8: two concurrent deletions under ECA."""
    schemas = _two_relation_schemas()
    return Scenario(
        name="example-8",
        paper_ref="Appendix A, Example 8",
        algorithm="eca",
        schemas=schemas,
        view=_view_w(schemas),
        initial={"r1": [(1, 2), (4, 2)], "r2": [(2, 3)]},
        updates=[delete("r1", (4, 2)), delete("r2", (2, 3))],
        actions=[U, W, U, W, A, W, A, W],
        expected_final=[],
        description=(
            "The signed answer A2 = (-[4], -[1]) empties the view exactly; "
            "compare Example 3 where the uncompensated baseline fails."
        ),
    )


def example_9() -> Scenario:
    """Appendix A, Example 9: a deletion racing an insertion under ECA."""
    schemas = _two_relation_schemas()
    return Scenario(
        name="example-9",
        paper_ref="Appendix A, Example 9",
        algorithm="eca",
        schemas=schemas,
        view=_view_w(schemas),
        initial={"r1": [(1, 2), (4, 2)], "r2": []},
        updates=[delete("r1", (4, 2)), insert("r2", (2, 3))],
        actions=[U, W, U, W, A, W, A, W],
        expected_final=[(1,)],
        description=(
            "Q1 sees the insert it should not ([4] with a minus sign); the "
            "compensating +pi([4,2] |x| [2,3]) term cancels it."
        ),
    )


#: All worked examples, keyed by name.
PAPER_EXAMPLES: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        example_1(),
        example_2(),
        example_3(),
        example_4(),
        example_5(),
        example_7(),
        example_8(),
        example_9(),
    )
}
