"""Replay the paper's worked examples.

:func:`run_scenario` builds the source and warehouse a scenario describes,
replays the paper's exact event order with a scripted schedule, and returns
the trace plus the algorithm instance for inspection.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.protocol import WarehouseAlgorithm
from repro.core.registry import create_algorithm
from repro.relational.engine import evaluate_view
from repro.simulation.driver import Simulation
from repro.simulation.schedules import Schedule, ScriptedSchedule
from repro.simulation.trace import Trace
from repro.source.memory import MemorySource
from repro.source.sqlite import SQLiteSource
from repro.workloads.paper_examples import Scenario


def run_scenario(
    scenario: Scenario,
    algorithm: Optional[str] = None,
    schedule: Optional[Schedule] = None,
    source_kind: str = "memory",
    recorder: Optional[object] = None,
) -> Tuple[Trace, WarehouseAlgorithm]:
    """Run one scenario end to end.

    Parameters
    ----------
    scenario:
        A worked example (see :data:`repro.workloads.PAPER_EXAMPLES`).
    algorithm:
        Override the scenario's algorithm (e.g. run ECA on the anomaly
        scenario of Example 2).  When overriding, supply a ``schedule``
        too — the scripted event order only fits the original algorithm's
        message pattern.
    schedule:
        Defaults to the scenario's scripted event order.
    source_kind:
        ``"memory"`` or ``"sqlite"``.
    """
    name = algorithm or scenario.algorithm
    if schedule is None:
        schedule = ScriptedSchedule(scenario.actions)
    if source_kind == "memory":
        source = MemorySource(scenario.schemas, scenario.initial)
    elif source_kind == "sqlite":
        source = SQLiteSource(scenario.schemas, scenario.initial)
    else:
        raise ValueError(f"unknown source kind {source_kind!r}")
    initial_view = evaluate_view(scenario.view, source.snapshot())
    warehouse = create_algorithm(
        name, scenario.view, initial_view, **scenario.algorithm_options
    )
    simulation = Simulation(source, warehouse, scenario.updates, recorder)
    trace = simulation.run(schedule)
    if source_kind == "sqlite":
        source.close()
    return trace, warehouse
