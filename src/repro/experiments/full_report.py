"""One-shot regeneration of every experiment as a text report.

``generate_report`` stitches together everything EXPERIMENTS.md documents
— Table 1, message counts, the four figures, crossovers, the worked
examples, the correctness audit, and (unless ``quick``) the measured
counterparts and the staleness frontier — so a reviewer can diff a fresh
run against the committed record with one command::

    python -m repro report --output report.txt
"""

from __future__ import annotations

from collections import defaultdict
from typing import List, Optional

from repro.consistency import check_trace
from repro.costmodel import analytic
from repro.costmodel.parameters import PaperParameters
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.measured import measure_bytes_series, measure_io_series
from repro.experiments.report import render_series, render_table
from repro.experiments.runner import run_scenario
from repro.experiments.tables import messages_table, parameter_table


def _heading(title: str) -> str:
    return "\n".join(["", "=" * 72, title, "=" * 72, ""])


def _crossover_rows(params: PaperParameters) -> List[dict]:
    pairs = [
        ("bytes: ECA best vs recompute-once", analytic.bytes_eca_best),
        ("bytes: ECA worst vs recompute-once", analytic.bytes_eca_worst),
        ("IO s1: ECA best vs recompute-once", analytic.io1_eca_best),
        ("IO s2: ECA best vs recompute-once", analytic.io2_eca_best),
        ("IO s2: ECA worst vs recompute-once", analytic.io2_eca_worst),
    ]
    reference = {
        "bytes: ECA best vs recompute-once": analytic.bytes_rv_best,
        "bytes: ECA worst vs recompute-once": analytic.bytes_rv_best,
        "IO s1: ECA best vs recompute-once": analytic.io1_rv_best,
        "IO s2: ECA best vs recompute-once": analytic.io2_rv_best,
        "IO s2: ECA worst vs recompute-once": analytic.io2_rv_best,
    }
    rows = []
    for label, curve in pairs:
        rv = reference[label]
        k = analytic.crossover_k(
            lambda p, kk: curve(p, kk), lambda p, kk: rv(p), params
        )
        rows.append({"comparison": label, "crossover k": k})
    return rows


def _examples_rows() -> List[dict]:
    from repro.workloads.paper_examples import PAPER_EXAMPLES

    rows = []
    for name in sorted(PAPER_EXAMPLES):
        scenario = PAPER_EXAMPLES[name]
        trace, warehouse = run_scenario(scenario)
        final = sorted(warehouse.mv.rows())
        rows.append(
            {
                "example": name,
                "algorithm": scenario.algorithm,
                "final": str(final),
                "matches paper": final == scenario.expected_final,
                "level": check_trace(scenario.view, trace).level(),
            }
        )
    return rows


def _audit_rows(workloads: int = 6, updates: int = 9) -> List[dict]:
    from repro.core.registry import create_algorithm
    from repro.core.stored_copies import StoredCopies
    from repro.relational.engine import evaluate_view
    from repro.relational.schema import RelationSchema
    from repro.relational.views import View
    from repro.simulation.driver import Simulation
    from repro.simulation.schedules import (
        BestCaseSchedule,
        RandomSchedule,
        WorstCaseSchedule,
    )
    from repro.source.memory import MemorySource
    from repro.workloads.random_gen import random_workload

    schemas = [
        RelationSchema("r1", ("W", "X"), key=("W",)),
        RelationSchema("r2", ("X", "Y"), key=("Y",)),
    ]
    initial = {"r1": [(1, 2), (2, 3)], "r2": [(2, 5), (3, 6)]}
    view = View.natural_join("V", schemas, ["W", "Y"])
    names = ["basic", "eca", "eca-key", "eca-local", "lca", "stored-copies"]
    levels = defaultdict(set)
    for seed in range(workloads):
        workload = random_workload(
            schemas, updates, seed=seed, initial=initial, respect_keys=True
        )
        for schedule in (BestCaseSchedule(), WorstCaseSchedule(), RandomSchedule(seed)):
            for name in names:
                source = MemorySource(schemas, initial)
                initial_view = evaluate_view(view, source.snapshot())
                if name == "stored-copies":
                    algo = StoredCopies(view, initial_view, source.snapshot())
                else:
                    algo = create_algorithm(name, view, initial_view)
                trace = Simulation(source, algo, list(workload)).run(schedule)
                levels[name].add(check_trace(view, trace).level())
    return [
        {"algorithm": name, "observed levels": ", ".join(sorted(levels[name]))}
        for name in names
    ]


def generate_report(
    params: Optional[PaperParameters] = None, quick: bool = False
) -> str:
    """The full regenerated experimental record, as one text blob."""
    params = params or PaperParameters()
    chunks: List[str] = []
    chunks.append(
        "Reproduction report — 'View Maintenance in a Warehousing "
        "Environment' (SIGMOD 1995)"
    )

    chunks.append(_heading("E6 — Table 1, model parameters"))
    chunks.append(render_table("", parameter_table(params)))

    chunks.append(_heading("E1 — Section 6.1, message counts"))
    chunks.append(
        render_table("", messages_table(k_values=(1, 10, 100), periods=(1, 10)))
    )

    for name, builder in ALL_FIGURES.items():
        chunks.append(_heading(f"{name} (analytic)"))
        x_key = "C" if name == "figure-6.2" else "k"
        series = builder(params)
        if name == "figure-6.3":
            series = builder(params, k_values=range(10, 121, 10))
        chunks.append(render_series("", series, x_key=x_key))

    chunks.append(_heading("Headline crossovers"))
    chunks.append(render_table("", _crossover_rows(params)))

    chunks.append(_heading("E8 — the paper's worked examples"))
    chunks.append(render_table("", _examples_rows()))

    chunks.append(_heading("E9 — correctness audit"))
    chunks.append(render_table("", _audit_rows()))

    chunks.append(_heading("E13 — multi-source frontier"))
    chunks.append(render_table("", _multisource_rows()))

    if not quick:
        chunks.append(_heading("E7 — measured bytes (full simulation)"))
        chunks.append(
            render_series("", measure_bytes_series(params, k_values=(3, 12, 24, 48)))
        )
        chunks.append(_heading("E7 — measured I/O, Scenario 1"))
        chunks.append(
            render_series("", measure_io_series(1, params, k_values=(1, 3, 5, 7, 9, 11)))
        )
        chunks.append(_heading("E7 — measured I/O, Scenario 2"))
        chunks.append(
            render_series("", measure_io_series(2, params, k_values=(1, 3, 5, 7, 9, 11)))
        )

    return "\n".join(chunks) + "\n"


def _multisource_rows(runs: int = 15) -> List[dict]:
    from repro.multisource import (
        FragmentingIncremental,
        MultiSourceSimulation,
        MultiSourceStoredCopies,
        StrobeStyle,
        check_cut_consistency,
        check_cut_convergence,
    )
    from repro.relational.engine import evaluate_view
    from repro.relational.schema import RelationSchema
    from repro.relational.views import View
    from repro.simulation.schedules import RandomSchedule
    from repro.source.memory import MemorySource
    from repro.workloads.random_gen import random_workload

    r1 = RelationSchema("r1", ("W", "X"), key=("W",))
    r2 = RelationSchema("r2", ("X", "Y"), key=("Y",))
    r3 = RelationSchema("r3", ("Y", "Z"), key=("Z",))
    owners = {"r1": "A", "r2": "B", "r3": "B"}
    initial = {"r1": [(1, 2), (4, 2)], "r2": [(2, 5)], "r3": [(5, 3), (9, 8)]}
    view_def = View.natural_join("V", [r1, r2, r3], ["W", "r2.Y", "Z"])
    totals = {
        kind: {"converged": 0, "cut": 0} for kind in ("naive", "sc", "strobe")
    }
    for seed in range(runs):
        workload = random_workload(
            [r1, r2, r3], 8, seed=seed, initial=initial, respect_keys=True
        )
        for kind in totals:
            a = MemorySource([r1], {"r1": initial["r1"]})
            b = MemorySource([r2, r3], {"r2": initial["r2"], "r3": initial["r3"]})
            merged = {**a.snapshot(), **b.snapshot()}
            initial_view = evaluate_view(view_def, merged)
            if kind == "naive":
                algo = FragmentingIncremental(view_def, owners, initial_view)
            elif kind == "strobe":
                algo = StrobeStyle(view_def, owners, initial_view)
            else:
                algo = MultiSourceStoredCopies(view_def, owners, initial_view, merged)
            sim = MultiSourceSimulation({"A": a, "B": b}, algo, list(workload))
            trace = sim.run(RandomSchedule(seed * 3 + 1))
            totals[kind]["converged"] += check_cut_convergence(
                view_def, sim.per_source_states, trace.final_view_state
            )
            totals[kind]["cut"] += check_cut_consistency(
                view_def, sim.per_source_states, trace.view_states
            )
    return [
        {
            "algorithm": kind,
            "converged": f"{data['converged']}/{runs}",
            "cut-consistent": f"{data['cut']}/{runs}",
        }
        for kind, data in totals.items()
    ]
