"""Measured (simulated) counterparts of the analytic cost curves.

These run the *actual* system — generated Example 6 data, a real source, a
real warehouse algorithm, FIFO channels — under the schedule that realizes
each best/worst case, and read the costs off the wire:

- bytes are exact (S per answer tuple actually transferred);
- I/Os are charged per evaluated term by the scenario estimators, using
  the live relation cardinalities.

Absolute values will not coincide with the closed forms (the analytic
model assumes every join expands by exactly J and every selection keeps
exactly sigma of its input), but the curves' *shape* must match — that is
what the measured benchmarks assert.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.eca import ECA
from repro.core.recompute import RecomputeView
from repro.costmodel.counters import CostRecorder
from repro.costmodel.io_scenarios import Scenario1Estimator, Scenario2Estimator
from repro.costmodel.parameters import PaperParameters
from repro.relational.engine import evaluate_view
from repro.simulation.driver import Simulation
from repro.simulation.schedules import BestCaseSchedule, Schedule, WorstCaseSchedule
from repro.source.memory import MemorySource
from repro.source.sqlite import SQLiteSource
from repro.workloads.example6 import build_example6

Series = Dict[str, List[float]]


def _make_source(setup, source_kind: str):
    if source_kind == "memory":
        return MemorySource(setup.schemas, setup.initial)
    if source_kind == "sqlite":
        return SQLiteSource(setup.schemas, setup.initial)
    raise ValueError(f"unknown source kind {source_kind!r}")


def run_example6_once(
    params: PaperParameters,
    k: int,
    algorithm: str,
    schedule: Schedule,
    io_scenario: Optional[int] = None,
    seed: int = 0,
    source_kind: str = "memory",
    hot_fraction: float = 0.0,
    key_theta: Optional[float] = None,
) -> CostRecorder:
    """One simulated Example 6 run; returns the populated recorder.

    ``algorithm`` is ``"eca"``, ``"rv-best"`` (recompute once, period=k) or
    ``"rv-worst"`` (recompute every update, period=1).  ``key_theta``
    draws workload join keys Zipf-skewed (see :func:`build_example6`).
    """
    setup = build_example6(
        params, k, seed, hot_fraction=hot_fraction, key_theta=key_theta
    )
    source = _make_source(setup, source_kind)
    initial_view = evaluate_view(setup.view, source.snapshot())
    if algorithm == "eca":
        warehouse = ECA(setup.view, initial_view)
    elif algorithm == "rv-best":
        warehouse = RecomputeView(setup.view, initial_view, period=max(1, k))
    elif algorithm == "rv-worst":
        warehouse = RecomputeView(setup.view, initial_view, period=1)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    if io_scenario is None:
        estimator = None
    elif io_scenario == 1:
        estimator = Scenario1Estimator(params)
    elif io_scenario == 2:
        estimator = Scenario2Estimator(params)
    else:
        raise ValueError(f"io_scenario must be 1 or 2, got {io_scenario!r}")
    recorder = CostRecorder(params, estimator)
    simulation = Simulation(source, warehouse, setup.workload, recorder)
    simulation.run(schedule)
    if source_kind == "sqlite":
        source.close()
    return recorder


_CASES = {
    "RVBest": ("rv-best", BestCaseSchedule),
    "RVWorst": ("rv-worst", BestCaseSchedule),
    "ECABest": ("eca", BestCaseSchedule),
    "ECAWorst": ("eca", WorstCaseSchedule),
}


def measure_bytes_series(
    params: Optional[PaperParameters] = None,
    k_values: Sequence[int] = (3, 6, 12, 24, 48),
    seed: int = 0,
    source_kind: str = "memory",
) -> Series:
    """Measured counterpart of Figure 6.3 (B versus k)."""
    params = params or PaperParameters()
    series: Series = {"k": [float(k) for k in k_values]}
    for label, (algorithm, schedule_cls) in _CASES.items():
        series["B" + label] = [
            float(
                run_example6_once(
                    params, k, algorithm, schedule_cls(), seed=seed,
                    source_kind=source_kind,
                ).bytes
            )
            for k in k_values
        ]
    return series


def measure_io_series(
    scenario: int,
    params: Optional[PaperParameters] = None,
    k_values: Sequence[int] = (1, 3, 5, 7, 9, 11),
    seed: int = 0,
    source_kind: str = "memory",
) -> Series:
    """Measured counterpart of Figures 6.4/6.5 (IO versus k)."""
    params = params or PaperParameters()
    series: Series = {"k": [float(k) for k in k_values]}
    for label, (algorithm, schedule_cls) in _CASES.items():
        series["IO" + label] = [
            float(
                run_example6_once(
                    params, k, algorithm, schedule_cls(),
                    io_scenario=scenario, seed=seed, source_kind=source_kind,
                ).ios
            )
            for k in k_values
        ]
    return series
