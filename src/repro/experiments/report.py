"""Plain-text rendering of experiment series and tables."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def render_series(
    title: str, series: Mapping[str, Sequence[float]], x_key: str = "k"
) -> str:
    """Render a figure's series as an aligned text table.

    The first column is the x axis; remaining columns follow insertion
    order, matching the paper's legend order.
    """
    columns = [x_key] + [name for name in series if name != x_key]
    rows = len(series[x_key])
    widths = {
        name: max(len(name), max(len(_fmt(series[name][i])) for i in range(rows)))
        for name in columns
    }
    lines = [title, ""]
    lines.append("  ".join(name.rjust(widths[name]) for name in columns))
    lines.append("  ".join("-" * widths[name] for name in columns))
    for i in range(rows):
        lines.append(
            "  ".join(_fmt(series[name][i]).rjust(widths[name]) for name in columns)
        )
    return "\n".join(lines)


def render_table(title: str, rows: List[Dict[str, object]]) -> str:
    """Render a list of homogeneous dict rows as an aligned text table."""
    if not rows:
        return title + "\n(empty)"
    columns = list(rows[0].keys())
    widths = {
        name: max(len(str(name)), max(len(_fmt(row[name])) for row in rows))
        for name in columns
    }
    lines = [title, ""]
    lines.append("  ".join(str(name).ljust(widths[name]) for name in columns))
    lines.append("  ".join("-" * widths[name] for name in columns))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row[name]).ljust(widths[name]) for name in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return f"{value:.2f}"
    return str(value)
