"""Analytic series for the paper's four figures.

Each function returns a dict with the x-axis values and one list per curve,
named exactly as in the paper's legends.  The benchmark harness prints
these series and asserts their qualitative claims (who wins, crossover
locations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.costmodel import analytic
from repro.costmodel.parameters import PaperParameters

Series = Dict[str, List[float]]


def figure_6_2(
    params: Optional[PaperParameters] = None,
    cardinalities: Optional[Sequence[int]] = None,
) -> Series:
    """Figure 6.2 — bytes transferred versus relation cardinality C.

    Three updates (Example 6); default sweep C in 1..20 as in the paper.
    """
    params = params or PaperParameters()
    cardinalities = list(cardinalities or range(1, 21))
    k = 3
    series: Series = {"C": [float(c) for c in cardinalities]}
    series["BRVBest"] = []
    series["BRVWorst"] = []
    series["BECABest"] = []
    series["BECAWorst"] = []
    for c in cardinalities:
        p = params.replace(cardinality=c)
        series["BRVBest"].append(analytic.bytes_rv_best(p))
        series["BRVWorst"].append(analytic.bytes_rv_worst(p, k))
        series["BECABest"].append(analytic.bytes_eca_best(p, k))
        series["BECAWorst"].append(analytic.bytes_eca_worst_distinct3(p))
    return series


def figure_6_3(
    params: Optional[PaperParameters] = None,
    k_values: Optional[Sequence[int]] = None,
) -> Series:
    """Figure 6.3 — bytes transferred versus number of updates k (C=100)."""
    params = params or PaperParameters()
    k_values = list(k_values or range(1, 121))
    series: Series = {"k": [float(k) for k in k_values]}
    series["BRVBest"] = [analytic.bytes_rv_best(params) for _ in k_values]
    series["BRVWorst"] = [analytic.bytes_rv_worst(params, k) for k in k_values]
    series["BECABest"] = [analytic.bytes_eca_best(params, k) for k in k_values]
    series["BECAWorst"] = [analytic.bytes_eca_worst(params, k) for k in k_values]
    return series


def figure_6_4(
    params: Optional[PaperParameters] = None,
    k_values: Optional[Sequence[int]] = None,
) -> Series:
    """Figure 6.4 — I/O versus k, Scenario 1 (indexes + ample memory)."""
    params = params or PaperParameters()
    k_values = list(k_values or range(1, 12))
    series: Series = {"k": [float(k) for k in k_values]}
    series["IORVBest"] = [analytic.io1_rv_best(params) for _ in k_values]
    series["IORVWorst"] = [analytic.io1_rv_worst(params, k) for k in k_values]
    series["IOECABest"] = [analytic.io1_eca_best(params, k) for k in k_values]
    series["IOECAWorst"] = [analytic.io1_eca_worst(params, k) for k in k_values]
    return series


def figure_6_5(
    params: Optional[PaperParameters] = None,
    k_values: Optional[Sequence[int]] = None,
) -> Series:
    """Figure 6.5 — I/O versus k, Scenario 2 (no indexes, 3 blocks)."""
    params = params or PaperParameters()
    k_values = list(k_values or range(1, 12))
    series: Series = {"k": [float(k) for k in k_values]}
    series["IORVBest"] = [analytic.io2_rv_best(params) for _ in k_values]
    series["IORVWorst"] = [analytic.io2_rv_worst(params, k) for k in k_values]
    series["IOECABest"] = [analytic.io2_eca_best(params, k) for k in k_values]
    series["IOECAWorst"] = [analytic.io2_eca_worst(params, k) for k in k_values]
    return series


ALL_FIGURES = {
    "figure-6.2": figure_6_2,
    "figure-6.3": figure_6_3,
    "figure-6.4": figure_6_4,
    "figure-6.5": figure_6_5,
}
