"""Table 1 and the Section 6.1 message-count analysis."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.costmodel import analytic
from repro.costmodel.parameters import PaperParameters


def parameter_table(params: Optional[PaperParameters] = None) -> List[Dict[str, object]]:
    """Table 1 — the performance-model variables with their defaults."""
    params = params or PaperParameters()
    return [
        {"name": "C", "meaning": "Cardinality of a relation", "value": params.C},
        {"name": "S", "meaning": "Size of projected attributes (bytes)", "value": params.S},
        {"name": "sigma", "meaning": "Selection factor", "value": params.sigma},
        {"name": "J", "meaning": "Join factor", "value": params.J},
        {"name": "K", "meaning": "Tuples per physical block", "value": params.K},
        {"name": "I", "meaning": "I/Os to read one relation (= ceil(C/K))", "value": params.I},
        {
            "name": "I'",
            "meaning": "Double-block groups (= ceil(C/2K))",
            "value": params.I_prime,
        },
    ]


def messages_table(
    k_values: Sequence[int] = (1, 5, 10, 50, 100),
    periods: Sequence[int] = (1, 5, 10),
) -> List[Dict[str, object]]:
    """Section 6.1 — M_RV = 2*ceil(k/s) versus M_ECA = 2k.

    One row per (k, s) combination, plus the ECA column (independent of s).
    RV spans from 2 messages (s = k, view recomputed once) to 2k (s = 1).
    """
    rows: List[Dict[str, object]] = []
    for k in k_values:
        for s in periods:
            if s > k:
                continue
            rows.append(
                {
                    "k": k,
                    "s": s,
                    "M_RV": analytic.messages_rv(k, s),
                    "M_ECA": analytic.messages_eca(k),
                }
            )
        # The paper's two extremes for this k.
        rows.append(
            {
                "k": k,
                "s": k,
                "M_RV": analytic.messages_rv(k, k),
                "M_ECA": analytic.messages_eca(k),
            }
        )
    return rows
