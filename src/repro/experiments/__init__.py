"""Experiment harness: regenerates every table and figure of Section 6.

- :mod:`repro.experiments.figures` — analytic series for Figures 6.2-6.5;
- :mod:`repro.experiments.tables` — Table 1 and the Section 6.1 message
  analysis;
- :mod:`repro.experiments.measured` — simulated (measured) counterparts of
  the analytic curves, via the full source/warehouse simulation;
- :mod:`repro.experiments.runner` — replay of the paper's worked examples;
- :mod:`repro.experiments.report` — plain-text rendering of series, used
  by the example scripts and EXPERIMENTS.md.
"""

from repro.experiments.figures import (
    figure_6_2,
    figure_6_3,
    figure_6_4,
    figure_6_5,
)
from repro.experiments.measured import measure_bytes_series, measure_io_series
from repro.experiments.report import render_series
from repro.experiments.runner import run_scenario
from repro.experiments.tables import messages_table, parameter_table

__all__ = [
    "figure_6_2",
    "figure_6_3",
    "figure_6_4",
    "figure_6_5",
    "measure_bytes_series",
    "measure_io_series",
    "messages_table",
    "parameter_table",
    "render_series",
    "run_scenario",
]
