"""Several warehouse views over one SQLite source, maintained side by side.

Section 7: "in a warehouse consisting of multiple views where each view is
over data from a single source, ECA is simply applied to each view
separately."  This example runs three differently-shaped views — a wide
join, a filtered join, and a key-complete view — each with the algorithm
best suited to it (ECA, LCA for a completeness-critical audit view, and
ECA-Key), over the same operational update stream.

The second half runs all three views in ONE simulation behind a
:class:`~repro.warehouse.WarehouseCatalog`, which also exposes the
*mutual-consistency* subtlety: each view is strongly consistent on its
own timeline, but the joint warehouse state may momentarily mix source
states (the problem the authors' Strobe follow-up formalized).

Run:  python examples/multiview_warehouse.py
"""

from repro import (
    ECA,
    ECAKey,
    LCA,
    RandomSchedule,
    RelationSchema,
    Simulation,
    SQLiteSource,
    View,
    WarehouseCatalog,
    check_trace,
)
from repro.relational.conditions import Attr, Comparison, Const
from repro.relational.engine import evaluate_view
from repro.workloads.random_gen import random_workload

ACCOUNTS = RelationSchema("accounts", ("acct", "owner"), key=("acct",))
MOVES = RelationSchema("moves", ("move_id", "acct", "amount"), key=("move_id",))

INITIAL = {
    "accounts": [(1, 10), (2, 20), (3, 10)],
    "moves": [(100, 1, 500), (101, 2, 40), (102, 3, 75)],
}


def build_views():
    ledger = View.natural_join(
        "ledger", [ACCOUNTS, MOVES], ["move_id", "accounts.acct", "owner", "amount"]
    )
    big_moves = View.natural_join(
        "big_moves",
        [ACCOUNTS, MOVES],
        ["owner", "amount"],
        Comparison(Attr("amount"), ">", Const(100)),
    )
    audit = View.natural_join("audit", [ACCOUNTS, MOVES], ["move_id", "owner"])
    return ledger, big_moves, audit


def main() -> None:
    ledger, big_moves, audit = build_views()
    # One shared operational stream (keys respected for the ECAK view).
    workload = random_workload(
        [ACCOUNTS, MOVES], 30, seed=11, initial=INITIAL, domain=12, respect_keys=True
    )
    plans = [
        (ledger, lambda v, iv: ECAKey(v, iv), "ECA-Key"),
        (big_moves, lambda v, iv: ECA(v, iv), "ECA"),
        (audit, lambda v, iv: LCA(v, iv), "LCA"),
    ]

    final_states = []
    for view, factory, label in plans:
        source = SQLiteSource([ACCOUNTS, MOVES], INITIAL)
        warehouse = factory(view, evaluate_view(view, source.snapshot()))
        trace = Simulation(source, warehouse, list(workload)).run(RandomSchedule(7))
        report = check_trace(view, trace)
        final_states.append(trace.final_source_state)
        print(
            f"{view.name:<10} via {label:<8} -> "
            f"{warehouse.mv.cardinality():>3} rows, {report.level()}"
        )
        assert report.strongly_consistent, (view.name, report.detail)
        if label == "LCA":
            assert report.complete  # the audit view tracks every state
        source.close()

    # All three replays saw the same source history.
    assert final_states[0] == final_states[1] == final_states[2]
    print("\nall views converged against the same source history")

    # ------------------------------------------------------------------ #
    # The same three views behind one catalog, in a single simulation.
    # ------------------------------------------------------------------ #
    print("\n--- one simulation, three views (WarehouseCatalog) ---")
    source = SQLiteSource([ACCOUNTS, MOVES], INITIAL)
    state = source.snapshot()
    catalog = WarehouseCatalog(
        {
            "ledger": ECAKey(ledger, evaluate_view(ledger, state)),
            "big_moves": ECA(big_moves, evaluate_view(big_moves, state)),
            "audit": LCA(audit, evaluate_view(audit, state)),
        }
    )
    trace = Simulation(source, catalog, list(workload)).run(RandomSchedule(11))
    for name, algorithm in catalog.algorithms.items():
        solo = catalog.per_view_trace(name, trace)
        level = check_trace(algorithm.view, solo).level()
        print(f"  {name:<10} {algorithm.name:<8} -> {level}")
        assert check_trace(algorithm.view, solo).strongly_consistent
    joint = check_trace(catalog, trace)
    print(
        f"  joint warehouse state: {joint.level()}  "
        f"(per-view consistency does not compose — the mutual-consistency "
        f"problem of the Strobe follow-up)"
    )
    assert joint.convergent
    source.close()


if __name__ == "__main__":
    main()
