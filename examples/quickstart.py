"""Quickstart: maintain a warehouse view with ECA over an autonomous source.

Walks the public API end to end:

1. declare base relation schemas and an SPJ view (a natural join);
2. load a source (in-memory here; swap in SQLiteSource for a real DB file);
3. attach the Eager Compensating Algorithm at the warehouse;
4. stream updates through the FIFO-channel simulation;
5. check the run against the paper's correctness hierarchy.

Run:  python examples/quickstart.py
"""

from repro import (
    ECA,
    BestCaseSchedule,
    MemorySource,
    RelationSchema,
    Simulation,
    View,
    WorstCaseSchedule,
    check_trace,
    delete,
    insert,
)
from repro.relational.engine import evaluate_view


def main() -> None:
    # 1. Schemas and a view: V = pi_W (r1 |x| r2), joined on X.
    r1 = RelationSchema("r1", ("W", "X"))
    r2 = RelationSchema("r2", ("X", "Y"))
    view = View.natural_join("V", [r1, r2], ["W"])
    print(f"view definition: {view}")

    # 2. The source — a legacy system that executes updates and answers
    #    queries, knowing nothing about our view.
    source = MemorySource([r1, r2], {"r1": [(1, 2)], "r2": [(2, 4)]})

    # 3. The warehouse algorithm, primed with the view's current contents.
    warehouse = ECA(view, evaluate_view(view, source.snapshot()))
    print(f"initial view rows: {warehouse.mv.rows()}")

    # 4. Stream updates.  The schedule controls the race between source
    #    updates and query answers; WorstCaseSchedule makes every update
    #    land before any query is answered — the regime where naive
    #    incremental maintenance breaks and ECA compensates.
    workload = [
        insert("r2", (2, 3)),
        insert("r1", (4, 2)),
        delete("r2", (2, 4)),
    ]
    simulation = Simulation(source, warehouse, workload)
    trace = simulation.run(WorstCaseSchedule())

    print("\nevent log:")
    print(trace.describe())
    print(f"\nfinal view rows: {sorted(warehouse.mv.rows())}")

    # 5. Verify: the trace satisfies strong consistency (Appendix B).
    report = check_trace(view, trace)
    print(f"correctness level: {report.level()}")
    assert report.strongly_consistent

    # The same stream under a quiet schedule needs no compensation at all
    # (Section 5.6, property 3) and lands on the same answer.
    source2 = MemorySource([r1, r2], {"r1": [(1, 2)], "r2": [(2, 4)]})
    warehouse2 = ECA(view, evaluate_view(view, source2.snapshot()))
    Simulation(source2, warehouse2, workload).run(BestCaseSchedule())
    assert warehouse2.view_state() == warehouse.view_state()
    print("best-case run converges to the identical view — OK")


if __name__ == "__main__":
    main()
