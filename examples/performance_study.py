"""Regenerate the paper's entire Section 6 performance study as text.

Prints, in order:

- Table 1 (model parameters);
- the Section 6.1 message-count table;
- Figures 6.2-6.5 as aligned numeric series (analytic, exact);
- measured counterparts from real simulated runs (Example 6 data through
  the full source/warehouse stack), with the crossovers annotated.

Run:  python examples/performance_study.py           # full study
      python examples/performance_study.py --quick   # analytic only
"""

import sys

from repro.costmodel import analytic
from repro.costmodel.parameters import PaperParameters
from repro.experiments.figures import figure_6_2, figure_6_3, figure_6_4, figure_6_5
from repro.experiments.measured import measure_bytes_series, measure_io_series
from repro.experiments.report import render_series, render_table
from repro.experiments.tables import messages_table, parameter_table


def crossover_notes(params: PaperParameters) -> str:
    lines = ["Crossover points (smallest k where ECA cost >= recompute-once):"]
    pairs = [
        ("bytes, ECA best  vs RV best", analytic.bytes_eca_best, analytic.bytes_rv_best),
        ("bytes, ECA worst vs RV best", analytic.bytes_eca_worst, analytic.bytes_rv_best),
        ("IO s1, ECA best  vs RV best", analytic.io1_eca_best, analytic.io1_rv_best),
        ("IO s2, ECA best  vs RV best", analytic.io2_eca_best, analytic.io2_rv_best),
        ("IO s2, ECA worst vs RV best", analytic.io2_eca_worst, analytic.io2_rv_best),
    ]
    for label, eca_curve, rv_curve in pairs:
        k = analytic.crossover_k(
            lambda p, kk: eca_curve(p, kk), lambda p, kk: rv_curve(p), params
        )
        lines.append(f"  {label}: k = {k}")
    return "\n".join(lines)


def main() -> None:
    quick = "--quick" in sys.argv
    params = PaperParameters()

    print(render_table("Table 1 — model parameters", parameter_table(params)))
    print()
    print(
        render_table(
            "Section 6.1 — messages (M_RV vs M_ECA)",
            messages_table(k_values=(1, 10, 100), periods=(1, 10)),
        )
    )
    print()
    print(render_series("Figure 6.2 — B vs C (3 updates)", figure_6_2(params), "C"))
    print()
    fig63 = figure_6_3(params, k_values=range(10, 121, 10))
    print(render_series("Figure 6.3 — B vs k (C=100)", fig63))
    print()
    print(render_series("Figure 6.4 — IO vs k, Scenario 1", figure_6_4(params)))
    print()
    print(render_series("Figure 6.5 — IO vs k, Scenario 2", figure_6_5(params)))
    print()
    print(crossover_notes(params))

    if quick:
        return

    print("\n" + "=" * 72)
    print("Measured counterparts (full simulation on generated Example 6 data)")
    print("=" * 72 + "\n")
    measured_b = measure_bytes_series(params, k_values=(3, 12, 24, 48, 96))
    print(render_series("Measured B vs k", measured_b))
    print()
    measured_io1 = measure_io_series(1, params, k_values=(1, 3, 5, 7, 9, 11))
    print(render_series("Measured IO vs k, Scenario 1", measured_io1))
    print()
    measured_io2 = measure_io_series(2, params, k_values=(1, 3, 5, 7, 9, 11))
    print(render_series("Measured IO vs k, Scenario 2", measured_io2))
    print(
        "\nNote: measured worst-case byte curves sit near the best case "
        "because on random data most compensating terms return no tuples; "
        "the compensation overhead is still visible in I/O and in query "
        "term counts (see EXPERIMENTS.md, E7)."
    )


if __name__ == "__main__":
    main()
