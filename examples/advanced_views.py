"""Advanced view shapes: self-joins and union/difference views.

The paper's Section 4 and Section 7 sketch two extensions this library
implements in full:

1. **Self-joins** ("multiple occurrences of the same relation"): a
   'colleagues' view pairing employees of the same department, maintained
   by ECA while the employee relation churns.  The incremental query for
   one update expands by inclusion-exclusion over the occurrences — watch
   the term counts in the printed queries.
2. **Union and difference views**: net inventory movements as
   orders MINUS returns, and all movements as orders UNION ALL returns,
   maintained simultaneously from one update stream.

Run:  python examples/advanced_views.py
"""

import random

from repro import (
    ECA,
    LCA,
    MemorySource,
    RandomSchedule,
    RelationSchema,
    Simulation,
    UnionView,
    View,
    check_trace,
    insert,
)
from repro.relational.conditions import Attr, Comparison
from repro.relational.engine import evaluate_view


def self_join_demo() -> None:
    print("=" * 72)
    print("Self-join: colleagues = pairs of employees sharing a department")
    print("=" * 72)
    emp = RelationSchema("emp", ("name", "dept"))
    e1, e2 = emp.aliased("e1"), emp.aliased("e2")
    view = View(
        "colleagues",
        [e1, e2],
        ["e1.name", "e2.name"],
        Comparison(Attr("e1.dept"), "=", Attr("e2.dept"))
        & Comparison(Attr("e1.name"), "<", Attr("e2.name")),
    )
    initial = {"emp": [(1, 10), (2, 10), (3, 20)]}
    source = MemorySource([emp], initial)
    warehouse = ECA(view, evaluate_view(view, source.snapshot()))

    update = insert("emp", (4, 10))
    query = view.substitute("emp", update.signed_tuple())
    print(f"\nV<{update!r}> expands to {query.term_count()} terms "
          f"(inclusion-exclusion over the two occurrences):")
    for term in query.terms:
        print(f"  {term!r}")

    workload = [insert("emp", (4, 10)), insert("emp", (5, 20)), insert("emp", (6, 10))]
    trace = Simulation(source, warehouse, workload).run(RandomSchedule(1))
    report = check_trace(view, trace)
    print(f"\nfinal colleagues: {sorted(warehouse.mv.rows())}")
    print(f"correctness: {report.level()}")
    assert report.strongly_consistent


def union_demo() -> None:
    print()
    print("=" * 72)
    print("Union/difference: movements = orders UNION ALL returns;")
    print("                  net       = orders MINUS returns")
    print("=" * 72)
    orders = RelationSchema("orders", ("item", "qty"))
    rets = RelationSchema("rets", ("item", "qty"))
    ordered = View.natural_join("ordered", [orders], ["item", "qty"])
    returned = View.natural_join("returned", [rets], ["item", "qty"])
    movements = UnionView("movements", [ordered, returned])
    net = UnionView("net", [(1, ordered), (-1, returned)])

    rng = random.Random(7)
    unmatched = []
    workload = []
    for _ in range(12):
        if unmatched and rng.random() < 0.4:
            row = unmatched.pop()
            workload.append(insert("rets", row))
        else:
            row = (rng.randrange(1, 5), rng.randrange(1, 4))
            unmatched.append(row)
            workload.append(insert("orders", row))

    for view, algorithm_cls in ((movements, ECA), (net, LCA)):
        source = MemorySource([orders, rets])
        warehouse = algorithm_cls(view, evaluate_view(view, source.snapshot()))
        trace = Simulation(source, warehouse, list(workload)).run(RandomSchedule(3))
        report = check_trace(view, trace)
        print(
            f"\n{view!r}\n  final rows: {sorted(warehouse.mv.rows())}\n"
            f"  correctness: {report.level()}"
        )
        assert report.strongly_consistent


if __name__ == "__main__":
    self_join_demo()
    union_demo()
