"""The multi-source frontier: why Section 7 calls it future work.

Runs a three-relation view whose base data is split across two autonomous
sources (r1 at source A; r2 and r3 at source B) under random
interleavings, and measures:

1. the naive transplant of incremental maintenance (with query
   fragmentation) — fragments of one query read different global states,
   and the run frequently fails to converge;
2. stored copies — never queries the sources, and provably tracks a
   monotone path of *consistent cuts* (the multi-source analogue of the
   paper's consistency), even on interleavings where single-timeline
   consistency fails;
3. the Strobe-style algorithm — the query-based *solution* for
   key-complete views (action list + delete filters + quiescent apply,
   after the authors' own 1996 follow-up), correct on every run.

Run:  python examples/multisource_frontier.py
"""

from repro import MemorySource, RandomSchedule, RelationSchema, View, check_trace
from repro.multisource import (
    FragmentingIncremental,
    MultiSourceSimulation,
    MultiSourceStoredCopies,
    StrobeStyle,
    check_cut_consistency,
    check_cut_convergence,
)
from repro.relational.engine import evaluate_view
from repro.workloads import random_workload

R1 = RelationSchema("r1", ("W", "X"), key=("W",))
R2 = RelationSchema("r2", ("X", "Y"), key=("Y",))
R3 = RelationSchema("r3", ("Y", "Z"), key=("Z",))
OWNERS = {"r1": "A", "r2": "B", "r3": "B"}
INITIAL = {"r1": [(1, 2), (4, 2)], "r2": [(2, 5)], "r3": [(5, 3), (9, 8)]}
RUNS = 40


def build(kind):
    # The keyed projection makes the view usable by the Strobe-style
    # algorithm; the naive and SC runs use it identically.
    view = View.natural_join("V", [R1, R2, R3], ["W", "r2.Y", "Z"])
    a = MemorySource([R1], {"r1": INITIAL["r1"]})
    b = MemorySource([R2, R3], {"r2": INITIAL["r2"], "r3": INITIAL["r3"]})
    merged = {**a.snapshot(), **b.snapshot()}
    initial_view = evaluate_view(view, merged)
    if kind == "naive":
        algorithm = FragmentingIncremental(view, OWNERS, initial_view)
    elif kind == "strobe":
        algorithm = StrobeStyle(view, OWNERS, initial_view)
    else:
        algorithm = MultiSourceStoredCopies(view, OWNERS, initial_view, merged)
    return view, {"A": a, "B": b}, algorithm


def main() -> None:
    stats = {
        "naive": {"converged": 0, "cut_consistent": 0, "spanning": 0},
        "sc": {"converged": 0, "cut_consistent": 0, "global_consistent": 0},
        "strobe": {"converged": 0, "cut_consistent": 0},
    }
    for seed in range(RUNS):
        workload = random_workload(
            [R1, R2, R3], 8, seed=seed, initial=INITIAL, respect_keys=True
        )
        for kind in ("naive", "sc", "strobe"):
            view, sources, algorithm = build(kind)
            sim = MultiSourceSimulation(sources, algorithm, list(workload))
            trace = sim.run(RandomSchedule(seed * 3 + 1))
            entry = stats[kind]
            entry["converged"] += check_cut_convergence(
                view, sim.per_source_states, trace.final_view_state
            )
            entry["cut_consistent"] += check_cut_consistency(
                view, sim.per_source_states, trace.view_states
            )
            if kind == "naive":
                entry["spanning"] += algorithm.spanning_queries
            elif kind == "sc":
                entry["global_consistent"] += check_trace(view, trace).consistent

    naive, sc = stats["naive"], stats["sc"]
    print(f"{RUNS} random interleavings, view over sources A (r1) and B (r2, r3)\n")
    print("naive fragmenting incremental (Algorithm 5.1 transplanted):")
    print(f"  converged:        {naive['converged']}/{RUNS}")
    print(f"  cut-consistent:   {naive['cut_consistent']}/{RUNS}")
    print(f"  cross-source (spanning) queries issued: {naive['spanning']}")
    print()
    print("stored copies (SC):")
    print(f"  converged:        {sc['converged']}/{RUNS}")
    print(f"  cut-consistent:   {sc['cut_consistent']}/{RUNS}")
    print(
        f"  consistent vs the actual global order: "
        f"{sc['global_consistent']}/{RUNS}  "
        f"(< {RUNS}: across sources only *cut* consistency is attainable)"
    )
    strobe = stats["strobe"]
    print()
    print("strobe-style (action list + delete filters + quiescent apply):")
    print(f"  converged:        {strobe['converged']}/{RUNS}")
    print(f"  cut-consistent:   {strobe['cut_consistent']}/{RUNS}")

    assert sc["converged"] == RUNS and sc["cut_consistent"] == RUNS
    assert strobe["converged"] == RUNS and strobe["cut_consistent"] == RUNS
    assert naive["converged"] < RUNS
    print(
        "\nconclusion: fragmentation is easy, coordination is not — the "
        "'intricate algorithms' the paper defers to future work became "
        "Strobe/SWEEP; the strobe-style implementation above is that "
        "answer, query-based and correct on every run."
    )


if __name__ == "__main__":
    main()
