"""The paper's anomalies, live: Examples 1-3 replayed event by event.

Shows the exact interleavings from Section 1.1 producing

- Example 1: a correct run even under naive maintenance;
- Example 2: the insertion anomaly ([1],[4],[4] instead of [1],[4]);
- Example 3: the deletion anomaly (a stale tuple survives);

then re-runs the same interleavings under ECA and shows the compensating
queries repairing both.

Run:  python examples/anomaly_demo.py
"""

from repro import check_trace
from repro.experiments.runner import run_scenario
from repro.relational.engine import evaluate_view
from repro.workloads.paper_examples import PAPER_EXAMPLES


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def show(name: str) -> None:
    scenario = PAPER_EXAMPLES[name]
    banner(f"{scenario.paper_ref} — algorithm: {scenario.algorithm}")
    print(scenario.description)
    print()
    trace, warehouse = run_scenario(scenario)
    print(trace.describe())
    correct = evaluate_view(scenario.view, trace.final_source_state)
    report = check_trace(scenario.view, trace)
    print(f"\nfinal view:    {sorted(warehouse.mv.rows())}")
    print(f"correct view:  {sorted(correct.expand_rows())}")
    print(f"correctness:   {report.level()}")

    if scenario.algorithm == "basic":
        # Re-run the identical event order under ECA.
        trace2, warehouse2 = run_scenario(scenario, algorithm="eca")
        report2 = check_trace(scenario.view, trace2)
        print("\n--- same interleaving under ECA ---")
        print(f"final view:    {sorted(warehouse2.mv.rows())}")
        print(f"correctness:   {report2.level()}")
        assert report2.strongly_consistent


def main() -> None:
    for name in ("example-1", "example-2", "example-3"):
        show(name)

    banner("Appendix A — ECA under adversarial interleavings (Examples 4-9)")
    for name in ("example-4", "example-5", "example-7", "example-8", "example-9"):
        scenario = PAPER_EXAMPLES[name]
        trace, warehouse = run_scenario(scenario)
        report = check_trace(scenario.view, trace)
        print(
            f"{scenario.paper_ref:<28} {scenario.algorithm:<8} "
            f"final={sorted(warehouse.mv.rows())!s:<22} {report.level()}"
        )
        assert sorted(warehouse.mv.rows()) == scenario.expected_final


if __name__ == "__main__":
    main()
