"""A retail data warehouse over a busy operational source (ECA-Key).

The Section 1 motivation made concrete: an operational retail system
(customers, orders) keeps changing while a decision-support warehouse
maintains a joined sales view.  The view projects a key of every base
relation, so the streamlined ECA-Key algorithm applies: deletions are
handled at the warehouse without touching the source, and insertions need
no compensating queries.

The source here is a *SQLite database* — the closest stand-in for the
paper's "legacy system that does not understand views".

Run:  python examples/retail_warehouse.py
"""

import random

from repro import (
    ECAKey,
    RandomSchedule,
    RelationSchema,
    Simulation,
    SQLiteSource,
    View,
    check_trace,
    delete,
    insert,
)
from repro.costmodel.counters import CostRecorder
from repro.relational.engine import evaluate_view

CUSTOMERS = RelationSchema("customers", ("cust_id", "region"), key=("cust_id",))
ORDERS = RelationSchema("orders", ("order_id", "cust_id", "amount"), key=("order_id",))

INITIAL_CUSTOMERS = [(1, "west"), (2, "east"), (3, "west")]
INITIAL_ORDERS = [(100, 1, 120), (101, 2, 80), (102, 1, 15)]


def build_view() -> View:
    """sales(order_id, cust_id, region, amount) — keys of both relations.

    Note the projection names ``customers.cust_id``: key analysis is
    positional, so the key column must come from the relation that owns
    the key (the natural join makes it equal to ``orders.cust_id`` anyway).
    """
    return View.natural_join(
        "sales",
        [CUSTOMERS, ORDERS],
        ["order_id", "customers.cust_id", "region", "amount"],
    )


def busy_day_workload(seed: int, length: int = 40):
    """Orders placed and cancelled, customers joining and churning."""
    rng = random.Random(seed)
    live_orders = {oid: (cid, amt) for oid, cid, amt in INITIAL_ORDERS}
    live_customers = {cid: region for cid, region in INITIAL_CUSTOMERS}
    next_order, next_customer = 200, 10
    updates = []
    while len(updates) < length:
        roll = rng.random()
        if roll < 0.45 and live_customers:  # new order
            cust = rng.choice(list(live_customers))
            amount = rng.randrange(10, 300)
            live_orders[next_order] = (cust, amount)
            updates.append(insert("orders", (next_order, cust, amount)))
            next_order += 1
        elif roll < 0.65 and live_orders:  # cancellation
            oid = rng.choice(list(live_orders))
            cust, amount = live_orders.pop(oid)
            updates.append(delete("orders", (oid, cust, amount)))
        elif roll < 0.85:  # new customer
            region = rng.choice(["west", "east", "north"])
            live_customers[next_customer] = region
            updates.append(insert("customers", (next_customer, region)))
            next_customer += 1
        elif live_customers:  # churn (keep their orders; they just leave)
            cid = rng.choice(list(live_customers))
            region = live_customers.pop(cid)
            updates.append(delete("customers", (cid, region)))
    return updates


def main() -> None:
    view = build_view()
    print(f"warehouse view: {view}")
    print(f"projects all keys: {view.contains_all_keys()}\n")

    for seed in (1, 2, 3):
        source = SQLiteSource(
            [CUSTOMERS, ORDERS],
            {"customers": INITIAL_CUSTOMERS, "orders": INITIAL_ORDERS},
        )
        warehouse = ECAKey(view, evaluate_view(view, source.snapshot()))
        recorder = CostRecorder()
        workload = busy_day_workload(seed)
        trace = Simulation(source, warehouse, workload, recorder).run(
            RandomSchedule(seed)
        )
        report = check_trace(view, trace)
        deletes = sum(1 for u in workload if u.is_delete)
        print(
            f"day {seed}: {len(workload)} updates ({deletes} deletes), "
            f"{recorder.query_messages} queries sent "
            f"(deletes handled locally), "
            f"final view {warehouse.mv.cardinality()} rows, "
            f"{report.level()}"
        )
        assert report.strongly_consistent, report.detail
        # Every delete was handled without a source round-trip:
        assert recorder.query_messages == sum(1 for u in workload if u.is_insert)
        source.close()

    print("\nall days strongly consistent; deletions never touched the source")


if __name__ == "__main__":
    main()
