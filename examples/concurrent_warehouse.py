"""Concurrent warehouse: actors, a lossy transport, and a verdict.

The ISSUE.md scenario for the asyncio runtime, end to end:

1. two autonomous sources, each owning a two-relation join view;
2. one warehouse maintaining both views with ECA (Section 7: "ECA is
   simply applied to each view separately" via ``WarehouseCatalog``);
3. four clients concurrently refreshing and reading the views;
4. a fault-injecting transport — latency, jitter, and 30% message drops
   with retry/backoff — that still preserves per-channel FIFO, the one
   assumption the paper's Section 2 model actually needs;
5. the Section 3.1 checker classifying the emergent interleaving, plus
   the quiesce latency the faults cost.

Everything is driven by one seed: run it twice and the trace is
identical.  Run:  python examples/concurrent_warehouse.py
"""

from repro import ECA, MemorySource, RelationSchema, View, check_trace
from repro.relational.engine import evaluate_view
from repro.runtime import FaultPlan, run_concurrent
from repro.warehouse.catalog import WarehouseCatalog
from repro.workloads.random_gen import random_workload

SEED = 7


def build_source(prefix: str):
    """One autonomous source owning r1(W,X) |x| r2(X,Y)."""
    schemas = [
        RelationSchema(f"{prefix}_r1", ("W", "X")),
        RelationSchema(f"{prefix}_r2", ("X", "Y")),
    ]
    initial = {
        f"{prefix}_r1": [(1, 2), (2, 3)],
        f"{prefix}_r2": [(2, 5), (3, 6)],
    }
    return schemas, MemorySource(schemas, initial), initial


def main() -> None:
    # 1-2. Two sources, one ECA view per source, one shared warehouse.
    sources, algorithms, workload = {}, {}, []
    for index, name in enumerate(("orders", "inventory")):
        schemas, source, initial = build_source(name)
        sources[name] = source
        view = View.natural_join(f"V_{name}", schemas, ["W", "Y"])
        algorithms[view.name] = ECA(view, evaluate_view(view, source.snapshot()))
        workload.extend(
            random_workload(schemas, 10, seed=SEED + index, initial=initial)
        )
    warehouse = WarehouseCatalog(algorithms)

    # 4. The lossy-but-FIFO transport.
    faults = FaultPlan(latency=1.0, jitter=3.0, drop_rate=0.3)

    # 3+5. Run sources, warehouse, and four reading clients concurrently.
    result = run_concurrent(
        sources,
        warehouse,
        workload,
        clients=4,
        client_reads=3,
        faults=faults,
        seed=SEED,
    )

    report = check_trace(warehouse, result.trace)
    print(f"updates executed:      {result.updates}")
    print(f"warehouse events:      {len(result.trace.events)}")
    print(f"consistency verdict:   {report.level()}")
    print(f"quiesce latency:       {result.quiesce_latency:.2f} virtual ticks")
    print(f"virtual duration:      {result.virtual_duration:.2f} ticks")
    print(f"throughput:            {result.throughput():.0f} updates/s")
    print()
    for channel, stats in sorted(result.channel_stats.items()):
        print(
            f"  {channel:<18} sent={stats.sent:<3} dropped={stats.dropped:<3}"
            f" retries={stats.retries}"
        )
    print()
    for client, observations in sorted(result.observations.items()):
        tick, last = observations[-1]
        print(f"  {client}: last read at t={tick:.2f} saw {last.total_count()} row(s)")

    # Per-view maintenance is exact; the union across sources is only
    # guaranteed convergent (the Section 7 gap Strobe/SWEEP close).
    assert report.convergent, report.detail
    final = evaluate_view(warehouse, result.trace.final_source_state)
    assert result.final_view == final
    print("\nview converged to the eval-anytime oracle despite 30% drops")


if __name__ == "__main__":
    main()
